"""Sorted, coalescing integer interval sets.

Used by the cache model (which ranges of a node's memory are cached), by
allocator audits (free/used coverage) and by aperture maps. Intervals are
half-open ``[start, stop)`` over non-negative integers.

The implementation keeps a sorted list of disjoint intervals and uses
binary search for point/range queries, so all operations are
O(log n + k) for k touched intervals — adequate for the interval counts the
simulation produces (thousands, not millions, because bulk memory traffic is
tracked as coarse ranges rather than per cache line).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterable, Iterator


@dataclass(frozen=True, order=True)
class Interval:
    """Half-open interval ``[start, stop)``; empty intervals are invalid."""

    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.stop <= self.start:
            raise ValueError(f"interval [{self.start}, {self.stop}) is empty or inverted")
        if self.start < 0:
            raise ValueError("intervals cover non-negative offsets only")

    @property
    def length(self) -> int:
        return self.stop - self.start

    def overlaps(self, other: "Interval") -> bool:
        return self.start < other.stop and other.start < self.stop

    def contains(self, point: int) -> bool:
        return self.start <= point < self.stop

    def intersection(self, other: "Interval") -> "Interval | None":
        lo = max(self.start, other.start)
        hi = min(self.stop, other.stop)
        if lo < hi:
            return Interval(lo, hi)
        return None


class IntervalSet:
    """A set of non-negative integers stored as disjoint sorted intervals."""

    def __init__(self, intervals: Iterable[Interval] = ()) -> None:
        self._starts: list[int] = []
        self._stops: list[int] = []
        for iv in intervals:
            self.add(iv.start, iv.stop)

    # -- mutation -------------------------------------------------------------

    def add(self, start: int, stop: int) -> None:
        """Insert ``[start, stop)``, coalescing with neighbours."""
        if stop <= start:
            raise ValueError(f"cannot add empty interval [{start}, {stop})")
        if start < 0:
            raise ValueError("negative offsets are invalid")
        # Find all existing intervals that touch or overlap [start, stop).
        i = bisect.bisect_left(self._stops, start)
        j = bisect.bisect_right(self._starts, stop)
        if i < j:
            start = min(start, self._starts[i])
            stop = max(stop, self._stops[j - 1])
        del self._starts[i:j]
        del self._stops[i:j]
        self._starts.insert(i, start)
        self._stops.insert(i, stop)

    def remove(self, start: int, stop: int) -> None:
        """Remove ``[start, stop)``; removing absent ranges is a no-op."""
        if stop <= start:
            raise ValueError(f"cannot remove empty interval [{start}, {stop})")
        i = bisect.bisect_right(self._stops, start)
        j = bisect.bisect_left(self._starts, stop)
        if i >= j:
            return
        left_keep = self._starts[i] < start
        right_keep = self._stops[j - 1] > stop
        new_starts: list[int] = []
        new_stops: list[int] = []
        if left_keep:
            new_starts.append(self._starts[i])
            new_stops.append(start)
        if right_keep:
            new_starts.append(stop)
            new_stops.append(self._stops[j - 1])
        self._starts[i:j] = new_starts
        self._stops[i:j] = new_stops

    def clear(self) -> None:
        self._starts.clear()
        self._stops.clear()

    # -- queries --------------------------------------------------------------

    def __len__(self) -> int:
        """Number of disjoint intervals."""
        return len(self._starts)

    def __bool__(self) -> bool:
        return bool(self._starts)

    def __iter__(self) -> Iterator[Interval]:
        for s, e in zip(self._starts, self._stops):
            yield Interval(s, e)

    def total(self) -> int:
        """Total number of covered integers."""
        return sum(e - s for s, e in zip(self._starts, self._stops))

    def contains_point(self, point: int) -> bool:
        i = bisect.bisect_right(self._starts, point) - 1
        return i >= 0 and point < self._stops[i]

    def covers(self, start: int, stop: int) -> bool:
        """True iff the whole of ``[start, stop)`` is in the set."""
        if stop <= start:
            raise ValueError("empty query interval")
        i = bisect.bisect_right(self._starts, start) - 1
        return i >= 0 and self._stops[i] >= stop

    def overlap(self, start: int, stop: int) -> int:
        """Number of integers of ``[start, stop)`` present in the set."""
        if stop <= start:
            raise ValueError("empty query interval")
        covered = 0
        i = bisect.bisect_right(self._stops, start)
        while i < len(self._starts) and self._starts[i] < stop:
            covered += min(stop, self._stops[i]) - max(start, self._starts[i])
            i += 1
        return covered

    def intersecting(self, start: int, stop: int) -> list[Interval]:
        """The clipped intervals overlapping ``[start, stop)``."""
        if stop <= start:
            raise ValueError("empty query interval")
        out: list[Interval] = []
        i = bisect.bisect_right(self._stops, start)
        while i < len(self._starts) and self._starts[i] < stop:
            out.append(Interval(max(start, self._starts[i]), min(stop, self._stops[i])))
            i += 1
        return out

    def copy(self) -> "IntervalSet":
        out = IntervalSet()
        out._starts = list(self._starts)
        out._stops = list(self._stops)
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._starts == other._starts and self._stops == other._stops

    def __repr__(self) -> str:
        inner = ", ".join(f"[{s},{e})" for s, e in zip(self._starts, self._stops))
        return f"IntervalSet({inner})"
