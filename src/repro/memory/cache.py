"""Per-node CPU cache model with the paper's Figure 3 coherency semantics.

The paper's key hardware caveat (§III): through OpenCAPI, *reading* remote
disaggregated memory is cache-coherent, but a *write* to remote
disaggregated memory only flushes to the home node's DRAM — the home node's
CPU cache may keep serving a previous value until it is invalidated. This
asymmetry is why the framework's design (like the paper's) exchanges
metadata via RPC instead of writing into remote memory.

This model reproduces exactly that observable behaviour:

* The home node's cache is write-through with respect to its own stores, so
  remote coherent reads can simply read home DRAM (Fig 3a).
* A remote write lands in home DRAM but does **not** invalidate the home
  cache; if the overwritten range was cached, the model snapshots the old
  bytes, and subsequent *local* reads on the home node return the stale
  snapshot until ``invalidate()``/``flush()`` (Fig 3b).

For efficiency, residency is tracked as coarse byte ranges (an
:class:`IntervalSet`) aligned to cache lines, not per-line objects — bulk
benchmark traffic would otherwise drown Python in per-line bookkeeping.
Stale data is only materialised for ranges where staleness can actually be
observed.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.common.config import LocalMemoryConfig
from repro.memory.host import HostMemory
from repro.memory.intervals import IntervalSet


@dataclass(frozen=True)
class CacheAccess:
    """Outcome of a cache-mediated access, consumed by timing models."""

    hit_bytes: int
    miss_bytes: int
    stale_bytes: int = 0

    @property
    def total_bytes(self) -> int:
        return self.hit_bytes + self.miss_bytes

    @property
    def hit_fraction(self) -> float:
        total = self.total_bytes
        return self.hit_bytes / total if total else 0.0


class CacheModel:
    """Cache of one node over its own :class:`HostMemory`.

    The model intentionally tracks *residency* (for timing: cached ranges
    read faster) and *staleness* (for correctness: Fig 3b) and nothing else.
    Replacement is LRU over accessed ranges, bounded by
    ``cache_capacity_bytes``: every read or write touch refreshes its
    range's recency, and capacity pressure evicts the least recently
    touched range first — matching how a real set-associative cache ages
    out streaming traffic while pinning the working set.
    """

    def __init__(self, mem: HostMemory, config: LocalMemoryConfig | None = None):
        self._mem = mem
        self._config = config or LocalMemoryConfig()
        self._line = self._config.cache_line_bytes
        self._capacity = self._config.cache_capacity_bytes
        self._resident = IntervalSet()
        self._resident_bytes = 0
        # Recency-ordered ranges for LRU eviction: (start, stop), least
        # recently accessed first.
        self._lru: OrderedDict[tuple[int, int], None] = OrderedDict()
        # Stale snapshots: absolute start offset -> old bytes.
        self._stale: dict[int, bytes] = {}

    # -- helpers ---------------------------------------------------------------

    def _align(self, offset: int, size: int) -> tuple[int, int]:
        """Round ``[offset, offset+size)`` out to cache-line boundaries,
        clipped to memory bounds."""
        start = (offset // self._line) * self._line
        stop = -(-(offset + size) // self._line) * self._line
        return start, min(stop, self._mem.capacity)

    def _insert(self, start: int, stop: int) -> None:
        added = (stop - start) - self._resident.overlap(start, stop)
        self._resident.add(start, stop)
        self._resident_bytes += added
        key = (start, stop)
        if key in self._lru:
            self._lru.move_to_end(key)
        else:
            self._lru[key] = None
        self._evict_to_capacity()

    def _evict_to_capacity(self) -> None:
        while self._resident_bytes > self._capacity and self._lru:
            (start, stop), _ = self._lru.popitem(last=False)
            removed = self._resident.overlap(start, stop)
            if removed:
                self._resident.remove(start, stop)
                self._resident_bytes -= removed
                self._drop_stale(start, stop)

    def _drop_stale(self, start: int, stop: int) -> None:
        doomed = [
            s for s, data in self._stale.items() if s < stop and s + len(data) > start
        ]
        for s in doomed:
            del self._stale[s]

    # -- node-local operations ---------------------------------------------------

    def local_read(self, offset: int, size: int, out: bytearray | memoryview | None = None) -> CacheAccess:
        """A read issued by this node's own CPU.

        Returns hit/miss accounting; if *out* is provided, the observed bytes
        (including any stale cached values, Fig 3b) are copied into it.
        """
        if size <= 0:
            raise ValueError("read size must be positive")
        start, stop = self._align(offset, size)
        hit = self._resident.overlap(start, stop)
        miss = (stop - start) - hit
        stale = 0
        if out is not None:
            mv = memoryview(out)
            if mv.ndim != 1 or mv.itemsize != 1:
                mv = mv.cast("B")
            if len(mv) < size:
                raise ValueError("output buffer too small")
            mv[:size] = self._mem.view(offset, size)
            stale = self._overlay_stale(offset, size, mv)
        else:
            stale = self._count_stale(offset, size)
        self._insert(start, stop)
        return CacheAccess(hit_bytes=hit, miss_bytes=miss, stale_bytes=stale)

    def observed_view(self, offset: int, size: int) -> bytes:
        """The bytes this node's CPU observes at ``[offset, offset+size)`` —
        DRAM contents overlaid with any stale cached snapshots."""
        buf = bytearray(size)
        self.local_read(offset, size, out=buf)
        return bytes(buf)

    def local_write(self, offset: int, data) -> CacheAccess:
        """A store by this node's own CPU: write-through to DRAM, cache
        updated, any stale snapshot for the range superseded."""
        mv = memoryview(data)
        if mv.ndim != 1 or mv.itemsize != 1:
            mv = mv.cast("B")
        size = len(mv)
        if size == 0:
            raise ValueError("write size must be positive")
        self._mem.write(offset, mv)
        start, stop = self._align(offset, size)
        hit = self._resident.overlap(start, stop)
        self._drop_stale(start, stop)
        self._insert(start, stop)
        return CacheAccess(hit_bytes=hit, miss_bytes=(stop - start) - hit)

    def note_local_write(self, offset: int, size: int) -> CacheAccess:
        """Account a local write without moving bytes (charge-only paths in
        the benchmark harness): cache state is updated exactly as
        :meth:`local_write` would, DRAM contents are left untouched."""
        if size <= 0:
            raise ValueError("write size must be positive")
        start, stop = self._align(offset, size)
        hit = self._resident.overlap(start, stop)
        self._drop_stale(start, stop)
        self._insert(start, stop)
        return CacheAccess(hit_bytes=hit, miss_bytes=(stop - start) - hit)

    # -- fabric-side operations ----------------------------------------------------

    def remote_coherent_read(self, offset: int, size: int) -> memoryview:
        """A read arriving over the fabric (Fig 3a): OpenCAPI snoops, so the
        remote reader always observes current DRAM contents."""
        return self._mem.readonly_view(offset, size)

    def remote_write_received(self, offset: int, data) -> int:
        """A write arriving over the fabric (Fig 3b): flushed to DRAM, but
        the home cache is *not* invalidated. If the range is resident, the
        old bytes are snapshotted so the home CPU keeps observing them.

        Returns the number of bytes that became stale in the home cache.
        """
        mv = memoryview(data)
        if mv.ndim != 1 or mv.itemsize != 1:
            mv = mv.cast("B")
        size = len(mv)
        if size == 0:
            raise ValueError("write size must be positive")
        stale = 0
        for iv in self._resident.intersecting(*self._align(offset, size)):
            lo = max(iv.start, offset)
            hi = min(iv.stop, offset + size)
            if lo < hi:
                self._stale[lo] = self._mem.read(lo, hi - lo)
                stale += hi - lo
        self._mem.write(offset, mv)
        return stale

    # -- maintenance -----------------------------------------------------------------

    def invalidate(self, offset: int, size: int) -> None:
        """Drop cached (and stale) state for a range — what a custom kernel
        module would do to make remote writes visible (paper §III)."""
        start, stop = self._align(offset, size)
        removed = self._resident.overlap(start, stop)
        if removed:
            self._resident.remove(start, stop)
            self._resident_bytes -= removed
        self._drop_stale(start, stop)

    def flush(self) -> None:
        """Drop the whole cache."""
        self._resident.clear()
        self._resident_bytes = 0
        self._lru.clear()
        self._stale.clear()

    # -- introspection -----------------------------------------------------------------

    @property
    def resident_bytes(self) -> int:
        return self._resident_bytes

    @property
    def stale_ranges(self) -> int:
        return len(self._stale)

    def is_resident(self, offset: int, size: int) -> bool:
        start, stop = self._align(offset, size)
        return self._resident.covers(start, stop)

    # -- internals ---------------------------------------------------------------------

    def _count_stale(self, offset: int, size: int) -> int:
        stale = 0
        for s, data in self._stale.items():
            lo = max(s, offset)
            hi = min(s + len(data), offset + size)
            if lo < hi:
                stale += hi - lo
        return stale

    def _overlay_stale(self, offset: int, size: int, out: memoryview) -> int:
        stale = 0
        for s, data in self._stale.items():
            lo = max(s, offset)
            hi = min(s + len(data), offset + size)
            if lo < hi:
                out[lo - offset : hi - offset] = data[lo - s : hi - s]
                stale += hi - lo
        return stale
