"""repro.obs — unified observability: metrics, exporters, correlation.

One metrics surface for the whole simulator: per-node
:class:`MetricsRegistry` instances hold labeled Counter/Gauge/Histogram
families (exact p50/p95/p99/max quantiles in simulated nanoseconds, built
on ``repro.common.stats``), legacy per-component :class:`CounterGroup`
bags bind into the same registries, :func:`render_prometheus` and
:class:`Telemetry` export everything as a Prometheus text scrape, JSON
snapshot, and cluster-merged view, and :class:`CorrelationContext` mints
deterministic per-operation request ids that stitch client, RPC, and
fabric trace spans of a single Get into one correlated story.

Instrumentation is strictly opt-in (``Cluster(..., metrics=True)``) and
never advances the simulated clock or consumes deterministic RNG — with
metrics disabled, benchmark results are bit-identical to an uninstrumented
build, and the disabled hot path is a single ``is None`` check.
"""

from repro.obs.correlation import CorrelationContext
from repro.obs.export import Telemetry, group_by_label, render_prometheus
from repro.obs.metrics import (
    NULL_REGISTRY,
    Counter,
    CounterGroup,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    NullMetricsRegistry,
    QUANTILES,
)
from repro.obs.spans import (
    BASE_COMPONENTS,
    COMPONENTS,
    FlightRecorder,
    NULL_SPAN_SINK,
    NullSpanSink,
    SpanConfig,
    SpanRecord,
    SpanSink,
)

__all__ = [
    "BASE_COMPONENTS",
    "COMPONENTS",
    "CorrelationContext",
    "Counter",
    "CounterGroup",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NullSpanSink",
    "NULL_REGISTRY",
    "NULL_SPAN_SINK",
    "QUANTILES",
    "SpanConfig",
    "SpanRecord",
    "SpanSink",
    "Telemetry",
    "group_by_label",
    "render_prometheus",
]
