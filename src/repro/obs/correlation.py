"""Correlation ids: stitching one logical operation across layers.

A cluster owns a single :class:`CorrelationContext`. When a client begins
an operation (Get, Put) it mints a request id — a deterministic sequence
number, never wall-clock or RNG derived, so traced runs replay
bit-identically — and pushes it onto the context. Everything that runs
beneath the operation (RPC channel spans, the server-side dispatch span,
fabric read/write spans) reads ``current`` and stamps the id into its
trace-event args as ``rid``. Remote buffers returned by a Get carry the id
with them so the *deferred* fabric reads (``read_all`` after the Get
returned) still attribute to the originating request via
:meth:`CorrelationContext.resumed`.

The context is a plain stack, matching the simulator's single-threaded
depth-first execution: nested operations (a replicated Put issuing RPCs)
see the innermost id.
"""

from __future__ import annotations

from contextlib import contextmanager


class CorrelationContext:
    """Mints and scopes per-operation request ids."""

    __slots__ = ("_prefix", "_seq", "_stack")

    def __init__(self, prefix: str = "req"):
        self._prefix = prefix
        self._seq = 0
        self._stack: list[str] = []

    def mint(self) -> str:
        """A fresh deterministic request id (``req-000001``, ...)."""
        self._seq += 1
        return f"{self._prefix}-{self._seq:06d}"

    def begin(self, rid: str | None = None) -> str:
        """Enter an operation scope; mint an id unless resuming one."""
        if rid is None:
            rid = self.mint()
        self._stack.append(rid)
        return rid

    def end(self) -> None:
        """Leave the innermost operation scope."""
        self._stack.pop()

    @property
    def current(self) -> str | None:
        """The innermost active request id, or None outside any operation."""
        return self._stack[-1] if self._stack else None

    @contextmanager
    def operation(self, rid: str | None = None):
        """``with ctx.operation() as rid:`` — scoped begin/end."""
        rid = self.begin(rid)
        try:
            yield rid
        finally:
            self.end()

    @contextmanager
    def resumed(self, rid: str):
        """Re-enter an existing id, e.g. a deferred fabric read performed
        after the originating Get already returned."""
        self.begin(rid)
        try:
            yield rid
        finally:
            self.end()

    def __repr__(self) -> str:
        return (
            f"CorrelationContext(minted={self._seq}, depth={len(self._stack)})"
        )
