"""The unified metrics surface: instruments, families, registries.

Every node of a cluster owns one :class:`MetricsRegistry`; components
register *labeled families* of three instrument kinds —

* :class:`Counter` — monotonically increasing event/byte counts;
* :class:`Gauge` — point-in-time values, settable directly or sampled
  through a callback at collect time (allocator utilisation, breaker
  state, cache sizes never need a write on the hot path);
* :class:`Histogram` — exact-quantile latency distributions in simulated
  nanoseconds, backed by :class:`repro.common.stats.Distribution` (raw
  samples, so p50/p95/p99/max are exact, and per-node histograms merge
  losslessly into cluster-wide views).

:class:`CounterGroup` is the migration path for the pre-registry ad-hoc
ad-hoc counter bags that used to be scattered across stores, links and
channels: the same dict-backed ``inc``/``get``/``snapshot`` hot path, plus
the ability to be *bound* to a registry so every key exports as a labeled
counter family at scrape time — binding costs nothing per increment.

Disabled mode is the default and is genuinely zero-overhead: components
hold ``None`` instrument handles until ``attach_metrics`` is called, and
every instrumented site guards with ``if self._m_x is not None`` — the same
pattern the opt-in :class:`~repro.common.trace.Tracer` uses. Nothing here
ever advances the simulated clock or consumes deterministic RNG, so a run
with metrics enabled is bit-identical in simulated time to one without.
:data:`NULL_REGISTRY` is an explicit no-op registry for call sites that
prefer passing a registry object over branching.
"""

from __future__ import annotations

import re
from typing import Callable, Iterable

from repro.common.stats import Distribution

#: The exact quantiles every histogram family exports.
QUANTILES = (0.5, 0.95, 0.99)

_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

_KINDS = ("counter", "gauge", "histogram")


def _check_name(name: str, what: str = "metric") -> str:
    if not _NAME_RE.match(name or ""):
        raise ValueError(f"invalid {what} name {name!r}")
    return name


class CounterGroup:
    """A named bag of monotonically increasing counters.

    Drop-in successor of the removed ``repro.common.stats.Counter``:
    the hot path is one dict update, nothing else. Binding the group to a
    registry (:meth:`MetricsRegistry.register_group`) is done once at
    wiring time; afterwards every key appears as a counter family in the
    scrape with the bind-time labels attached.
    """

    __slots__ = ("values",)

    def __init__(self) -> None:
        self.values: dict[str, int] = {}

    def inc(self, name: str, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        self.values[name] = self.values.get(name, 0) + amount

    def get(self, name: str) -> int:
        return self.values.get(name, 0)

    def snapshot(self) -> dict[str, int]:
        return dict(self.values)


class Counter:
    """One counter child (a family member with fixed label values)."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """One gauge child: set a value, or install a sampling callback."""

    __slots__ = ("_value", "_fn")

    def __init__(self) -> None:
        self._value = 0.0
        self._fn: Callable[[], float] | None = None

    def set(self, value: float) -> None:
        self._value = float(value)
        self._fn = None

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount
        self._fn = None

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def set_function(self, fn: Callable[[], float]) -> None:
        """Sample *fn* at collect time instead of storing writes — the
        zero-hot-path-cost mode used for allocator fragmentation, lookup
        cache stats and breaker state."""
        self._fn = fn

    @property
    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        return self._value


class Histogram:
    """One histogram child: exact quantiles over raw samples.

    Values are simulated nanoseconds on every latency family this repo
    ships; the instrument itself is unit-agnostic.

    ``observe`` optionally takes an *exemplar* — an opaque reference (a
    span id from ``repro.obs.spans``) tying the observation to a concrete
    trace. A bounded ring of recent ``(value, exemplar)`` pairs plus the
    exemplar of the slowest observation are kept, so the Prometheus
    exposition can annotate each bucket (and ``_max``) with a trace to go
    look at. With no exemplars recorded, payloads and renders are
    byte-identical to before.
    """

    __slots__ = ("_dist", "_sum", "_exemplars", "_max_exemplar")

    #: Recent exemplars retained per child (enough to cover every bucket).
    EXEMPLAR_RING = 64

    def __init__(self) -> None:
        self._dist = Distribution()
        self._sum = 0.0
        self._exemplars: "deque | None" = None
        self._max_exemplar: tuple[float, str] | None = None

    def observe(self, value: float, exemplar: str | None = None) -> None:
        self._dist.add(value)
        self._sum += float(value)
        if exemplar:
            if self._exemplars is None:
                from collections import deque

                self._exemplars = deque(maxlen=self.EXEMPLAR_RING)
            self._exemplars.append((float(value), str(exemplar)))
            if self._max_exemplar is None or value >= self._max_exemplar[0]:
                self._max_exemplar = (float(value), str(exemplar))

    @property
    def exemplars(self) -> list[tuple[float, str]]:
        """Recent (value, exemplar) pairs, oldest first."""
        return list(self._exemplars) if self._exemplars else []

    @property
    def max_exemplar(self) -> tuple[float, str] | None:
        """The exemplar of the slowest observation seen so far."""
        return self._max_exemplar

    @property
    def count(self) -> int:
        return self._dist.count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def max(self) -> float:
        return self._dist.max

    @property
    def samples(self) -> list[float]:
        return self._dist.samples

    def quantile(self, q: float) -> float:
        return self._dist.quantile(q)

    def quantiles(self) -> dict[str, float]:
        if not self.count:
            return {}
        return {_q_label(q): self._dist.quantile(q) for q in QUANTILES}


def _q_label(q: float) -> str:
    # 0.5 -> "0.5", 0.95 -> "0.95" — no trailing zeros, Prometheus style.
    return f"{q:g}"


_CHILD_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """All series of one metric name: kind, help text, fixed label names.

    ``labels(**values)`` returns the memoized child for one label-value
    combination; resolving a child once at wiring time makes the hot path
    a plain method call on the child.
    """

    __slots__ = ("name", "kind", "help", "labelnames", "buckets", "_children")

    def __init__(
        self,
        name: str,
        kind: str,
        help: str,
        labelnames: tuple[str, ...] = (),
        buckets: tuple[float, ...] | None = None,
    ):
        if kind not in _KINDS:
            raise ValueError(f"unknown metric kind {kind!r}")
        if buckets is not None and kind != "histogram":
            raise ValueError("buckets only apply to histogram families")
        self.name = _check_name(name, "family")
        self.kind = kind
        self.help = help
        self.labelnames = tuple(_check_name(ln, "label") for ln in labelnames)
        self.buckets = tuple(sorted(float(b) for b in buckets)) if buckets else None
        self._children: dict[tuple[str, ...], object] = {}

    def labels(self, **values: str):
        if set(values) != set(self.labelnames):
            raise ValueError(
                f"family {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(sorted(values))}"
            )
        key = tuple(str(values[ln]) for ln in self.labelnames)
        child = self._children.get(key)
        if child is None:
            child = _CHILD_TYPES[self.kind]()
            self._children[key] = child
        return child

    def series(self) -> list[tuple[dict[str, str], object]]:
        """(labels dict, child) pairs in stable label order."""
        out = []
        for key in sorted(self._children):
            out.append((dict(zip(self.labelnames, key)), self._children[key]))
        return out

    def __repr__(self) -> str:
        return (
            f"MetricFamily({self.name}, {self.kind}, "
            f"{len(self._children)} series)"
        )


class MetricsRegistry:
    """The per-node registry: families, bound counter groups, collection.

    ``node`` (when non-empty) is stamped onto every exported series as a
    ``node`` label, so per-node scrapes concatenate into one cluster view
    without collisions.
    """

    enabled = True

    def __init__(self, node: str = ""):
        self.node = node
        self._families: dict[str, MetricFamily] = {}
        # (prefix, bind labels) -> (group, route); re-binding the same key
        # replaces the old group — exactly what a recovered store needs.
        self._groups: dict[tuple, tuple[CounterGroup, dict[str, str], dict]] = {}

    # -- family factories ---------------------------------------------------------

    def _family(
        self,
        name: str,
        kind: str,
        help: str,
        labels: tuple[str, ...],
        buckets=None,
    ) -> MetricFamily:
        existing = self._families.get(name)
        if existing is not None:
            if existing.kind != kind or existing.labelnames != tuple(labels):
                raise ValueError(
                    f"family {name!r} already registered as {existing.kind} "
                    f"with labels {existing.labelnames}"
                )
            return existing
        family = MetricFamily(name, kind, help, tuple(labels), buckets)
        self._families[name] = family
        return family

    def counter(
        self, name: str, help: str = "", labels: tuple[str, ...] = ()
    ) -> MetricFamily:
        return self._family(name, "counter", help, labels)

    def gauge(
        self, name: str, help: str = "", labels: tuple[str, ...] = ()
    ) -> MetricFamily:
        return self._family(name, "gauge", help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: tuple[str, ...] = (),
        buckets: tuple[float, ...] | None = None,
    ) -> MetricFamily:
        return self._family(name, "histogram", help, labels, buckets)

    # -- counter-group binding ------------------------------------------------------

    def register_group(
        self,
        group: CounterGroup,
        prefix: str,
        *,
        route: dict[str, str] | None = None,
        **labels: str,
    ) -> None:
        """Bind *group* so each key exports as family ``<prefix>_<key>``
        with the given labels.

        ``route`` redirects keys by prefix into a different family name:
        ``route={"scrub_": "scrub_", "lookup_cache_": "cache_"}`` sends a
        store's ``scrub_passes`` to the ``scrub_passes`` family and
        ``lookup_cache_hits`` to ``cache_hits`` instead of burying them
        under ``plasma_``. Re-binding with the same prefix+labels replaces
        the previous group (the store-restart path).
        """
        _check_name(prefix, "group prefix")
        key = (prefix, tuple(sorted((k, str(v)) for k, v in labels.items())))
        self._groups[key] = (
            group,
            {k: str(v) for k, v in labels.items()},
            dict(route or {}),
        )

    @staticmethod
    def _group_family_name(prefix: str, counter_key: str, route: dict) -> str:
        for match, replacement in route.items():
            if counter_key.startswith(match):
                return replacement + counter_key[len(match):]
        return f"{prefix}_{counter_key}"

    # -- collection -------------------------------------------------------------------

    def _with_node(self, labels: dict[str, str]) -> dict[str, str]:
        if not self.node:
            return dict(labels)
        return {"node": self.node, **labels}

    def collect(self, include_samples: bool = False) -> list[dict]:
        """Everything this registry knows, as plain sorted dicts.

        The structure doubles as the JSON snapshot; the Prometheus
        renderer consumes it too. ``include_samples`` additionally embeds
        raw histogram samples so cross-node merges stay exact.
        """
        by_name: dict[str, dict] = {}

        def family_slot(name: str, kind: str, help: str) -> dict:
            slot = by_name.get(name)
            if slot is None:
                slot = {"name": name, "type": kind, "help": help, "series": []}
                by_name[name] = slot
            return slot

        for name in sorted(self._families):
            family = self._families[name]
            slot = family_slot(family.name, family.kind, family.help)
            if family.buckets is not None:
                slot["buckets"] = list(family.buckets)
            for labels, child in family.series():
                series: dict = {"labels": self._with_node(labels)}
                if family.kind == "histogram":
                    series["histogram"] = self._histogram_payload(
                        child, family.buckets, include_samples
                    )
                else:
                    series["value"] = child.value
                slot["series"].append(series)

        for (prefix, _), (group, labels, route) in sorted(self._groups.items()):
            for counter_key in sorted(group.values):
                fname = self._group_family_name(prefix, counter_key, route)
                slot = family_slot(fname, "counter", "Operational event counter.")
                slot["series"].append(
                    {
                        "labels": self._with_node(labels),
                        "value": float(group.values[counter_key]),
                    }
                )

        out = [by_name[name] for name in sorted(by_name)]
        for slot in out:
            slot["series"].sort(key=lambda s: sorted(s["labels"].items()))
        return out

    @staticmethod
    def _histogram_payload(
        child: Histogram, buckets: tuple[float, ...] | None, include_samples: bool
    ) -> dict:
        payload: dict = {
            "count": child.count,
            "sum": child.sum,
            "quantiles": child.quantiles(),
        }
        if child.count:
            payload["max"] = child.max
        if buckets is not None:
            samples = child.samples
            payload["buckets"] = [
                [le, sum(1 for s in samples if s <= le)] for le in buckets
            ]
        exemplars = child.exemplars
        if exemplars:
            # Only present when a span sink supplied exemplars, so metric
            # snapshots without tracing stay byte-identical.
            payload["exemplars"] = [[value, ref] for value, ref in exemplars]
            payload["max_exemplar"] = list(child.max_exemplar)
        if include_samples:
            payload["samples"] = child.samples
        return payload

    # -- export -----------------------------------------------------------------------

    def prometheus(self) -> str:
        """This registry's scrape in Prometheus text exposition format."""
        from repro.obs.export import render_prometheus

        return render_prometheus([self])

    def snapshot(self) -> dict:
        """JSON-ready snapshot of every family and series."""
        return {"node": self.node, "families": self.collect()}

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(node={self.node!r}, "
            f"{len(self._families)} families, {len(self._groups)} groups)"
        )


class _NullInstrument:
    """Absorbs every instrument call; shared singleton."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def set_function(self, fn) -> None:
        pass

    def observe(self, value: float, exemplar: str | None = None) -> None:
        pass


class _NullFamily:
    __slots__ = ()

    def labels(self, **values) -> _NullInstrument:
        return _NULL_INSTRUMENT


class NullMetricsRegistry:
    """The disabled registry: every factory returns no-op instruments.

    Lets call sites hold a registry unconditionally; components built by
    the cluster instead keep ``None`` handles and never touch metrics at
    all, which is measurably cheaper still.
    """

    enabled = False
    node = ""

    def counter(self, name: str, help: str = "", labels=()) -> _NullFamily:
        return _NULL_FAMILY

    def gauge(self, name: str, help: str = "", labels=()) -> _NullFamily:
        return _NULL_FAMILY

    def histogram(self, name: str, help: str = "", labels=(), buckets=None) -> _NullFamily:
        return _NULL_FAMILY

    def register_group(self, group, prefix, *, route=None, **labels) -> None:
        pass

    def collect(self, include_samples: bool = False) -> list:
        return []

    def prometheus(self) -> str:
        return ""

    def snapshot(self) -> dict:
        return {"node": "", "families": []}


_NULL_INSTRUMENT = _NullInstrument()
_NULL_FAMILY = _NullFamily()

#: Shared no-op registry for explicitly-disabled call sites.
NULL_REGISTRY = NullMetricsRegistry()


def registries_enabled(registries: Iterable) -> bool:
    return any(getattr(r, "enabled", False) for r in registries)
