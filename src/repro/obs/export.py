"""Exporters and cluster-wide telemetry views.

:func:`render_prometheus` turns one or more per-node registries into a
single Prometheus text-exposition scrape. Families are grouped *across*
registries so each metric name gets exactly one ``# HELP``/``# TYPE``
header; the per-registry ``node`` label keeps series distinct. Histogram
families without explicit buckets render as ``summary`` (exact p50/p95/p99
quantile lines plus ``_sum``/``_count``, with a companion ``_max`` gauge);
families with buckets render as classic cumulative ``histogram`` types.

:class:`Telemetry` is the cluster-facing handle returned by
``Cluster.metrics()``: per-node scrape and snapshot, a cross-node merged
view (counters/gauges summed, histogram samples concatenated so merged
quantiles stay exact), and ``top_latency``/``format_top`` for the CLI's
"where does the time go" table.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.obs.metrics import QUANTILES, MetricsRegistry, _q_label

_EXPORT_PREFIX = "repro_"


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (math.inf, -math.inf):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 2**53:
        return str(int(value))
    return repr(float(value))


def _format_le(le: float) -> str:
    return "+Inf" if le == math.inf else _format_value(le)


def _labels_text(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _sample_line(name: str, labels: dict[str, str], value: float) -> str:
    return f"{name}{_labels_text(labels)} {_format_value(value)}"


def _exemplar_suffix(exemplar) -> str:
    """OpenMetrics-style exemplar annotation: ``# {span_id="..."} value``.

    The ref is a span id from ``repro.obs.spans``, so a slow histogram
    bucket links straight to a concrete trace in the span export."""
    value, ref = exemplar
    return f' # {{span_id="{_escape_label_value(str(ref))}"}} {_format_value(value)}'


def _bucket_exemplar(exemplars, lo: float, hi: float):
    """Newest recorded exemplar whose value falls in ``(lo, hi]``."""
    for value, ref in reversed(exemplars):
        if lo < value <= hi:
            return (value, ref)
    return None


def _merge_collected(registries: Iterable) -> list[dict]:
    """Group collected families by name across registries, preserving the
    per-family sorted order."""
    by_name: dict[str, dict] = {}
    for registry in registries:
        for family in registry.collect():
            slot = by_name.get(family["name"])
            if slot is None:
                slot = {k: v for k, v in family.items() if k != "series"}
                slot["series"] = []
                by_name[family["name"]] = slot
            slot["series"].extend(family["series"])
    return [by_name[name] for name in sorted(by_name)]


def render_prometheus(registries: Iterable) -> str:
    """Render registries as one Prometheus text-exposition scrape."""
    lines: list[str] = []
    for family in _merge_collected(registries):
        name = _EXPORT_PREFIX + family["name"]
        kind = family["type"]
        bucketed = kind == "histogram" and family.get("buckets") is not None
        prom_type = (
            "histogram" if bucketed else "summary" if kind == "histogram" else kind
        )
        help_text = family.get("help") or "Operational metric."
        lines.append(f"# HELP {name} {_escape_help(help_text)}")
        lines.append(f"# TYPE {name} {prom_type}")
        max_lines: list[str] = []
        for series in family["series"]:
            labels = series["labels"]
            if kind != "histogram":
                lines.append(_sample_line(name, labels, series["value"]))
                continue
            hist = series["histogram"]
            exemplars = hist.get("exemplars") or ()
            if bucketed:
                cumulative = hist.get("buckets") or []
                prev_le = -math.inf
                for le, count in cumulative:
                    line = _sample_line(
                        f"{name}_bucket", {**labels, "le": _format_le(le)}, count
                    )
                    exemplar = _bucket_exemplar(exemplars, prev_le, le)
                    if exemplar is not None:
                        line += _exemplar_suffix(exemplar)
                    lines.append(line)
                    prev_le = le
                line = _sample_line(
                    f"{name}_bucket", {**labels, "le": "+Inf"}, hist["count"]
                )
                exemplar = _bucket_exemplar(exemplars, prev_le, math.inf)
                if exemplar is not None:
                    line += _exemplar_suffix(exemplar)
                lines.append(line)
            else:
                for q_text, q_value in hist["quantiles"].items():
                    lines.append(
                        _sample_line(name, {**labels, "quantile": q_text}, q_value)
                    )
                if hist["count"]:
                    line = _sample_line(f"{name}_max", labels, hist["max"])
                    if hist.get("max_exemplar"):
                        line += _exemplar_suffix(hist["max_exemplar"])
                    max_lines.append(line)
            lines.append(_sample_line(f"{name}_sum", labels, hist["sum"]))
            lines.append(_sample_line(f"{name}_count", labels, hist["count"]))
        if max_lines:
            lines.append(
                f"# HELP {name}_max Maximum observation of {name.removeprefix(_EXPORT_PREFIX)}."
            )
            lines.append(f"# TYPE {name}_max gauge")
            lines.extend(max_lines)
    return "\n".join(lines) + ("\n" if lines else "")


def group_by_label(registries: Iterable, label: str) -> dict:
    """Aggregate every family across *registries* by one label's values.

    Series carrying *label* fold into per-value totals: counters and
    gauges sum, histograms merge count/sum/max with exact quantiles from
    raw samples. Series without the label are ignored. Returns
    ``{label_value: {"counters": {family: total}, "gauges": {...},
    "histograms": {family: {...}}}}`` — the slicing the workload plane
    uses to report per-``tenant`` admission and latency.
    """
    counters: dict[tuple[str, str], float] = {}
    gauges: dict[tuple[str, str], float] = {}
    hist_samples: dict[tuple[str, str], list[float]] = {}
    for registry in registries:
        for family in registry.collect(include_samples=True):
            name = family["name"]
            for series in family["series"]:
                value = series["labels"].get(label)
                if value is None:
                    continue
                key = (str(value), name)
                if family["type"] == "counter":
                    counters[key] = counters.get(key, 0.0) + series["value"]
                elif family["type"] == "gauge":
                    gauges[key] = gauges.get(key, 0.0) + series["value"]
                else:
                    hist_samples.setdefault(key, []).extend(
                        series["histogram"].get("samples", [])
                    )
    grouped: dict[str, dict] = {}

    def _slot(value: str) -> dict:
        return grouped.setdefault(
            value, {"counters": {}, "gauges": {}, "histograms": {}}
        )

    for (value, name), total in sorted(counters.items()):
        _slot(value)["counters"][name] = total
    for (value, name), total in sorted(gauges.items()):
        _slot(value)["gauges"][name] = total
    for (value, name), samples in sorted(hist_samples.items()):
        entry: dict = {"count": len(samples), "sum": float(sum(samples))}
        if samples:
            from repro.common.stats import Distribution

            dist = Distribution()
            dist.extend(samples)
            entry["max"] = dist.max
            entry["quantiles"] = {_q_label(q): dist.quantile(q) for q in QUANTILES}
        _slot(value)["histograms"][name] = entry
    return dict(sorted(grouped.items()))


class Telemetry:
    """Cluster-wide view over the per-node metric registries."""

    def __init__(self, registries: dict[str, MetricsRegistry]):
        self._registries = dict(registries)

    def nodes(self) -> list[str]:
        return list(self._registries)

    def registry(self, node: str) -> MetricsRegistry:
        return self._registries[node]

    def prometheus(self) -> str:
        """One merged scrape covering every node (node label per series)."""
        return render_prometheus(self._registries.values())

    def snapshot(self) -> dict:
        """JSON-ready per-node snapshot."""
        return {node: reg.snapshot() for node, reg in self._registries.items()}

    def by_label(self, label: str) -> dict:
        """Cluster totals sliced by one label's values (see
        :func:`group_by_label`) — e.g. ``by_label("tenant")`` for the
        workload plane's per-tenant accounting."""
        return group_by_label(self._registries.values(), label)

    def merged(self) -> dict:
        """Cluster totals: counters/gauges summed across nodes, histograms
        merged losslessly from raw samples (exact merged quantiles)."""
        counters: dict[str, float] = {}
        gauges: dict[str, float] = {}
        hist_samples: dict[str, list[float]] = {}
        for registry in self._registries.values():
            for family in registry.collect(include_samples=True):
                name = family["name"]
                for series in family["series"]:
                    if family["type"] == "counter":
                        counters[name] = counters.get(name, 0.0) + series["value"]
                    elif family["type"] == "gauge":
                        gauges[name] = gauges.get(name, 0.0) + series["value"]
                    else:
                        hist_samples.setdefault(name, []).extend(
                            series["histogram"].get("samples", [])
                        )
        histograms = {}
        for name, samples in sorted(hist_samples.items()):
            entry: dict = {"count": len(samples), "sum": float(sum(samples))}
            if samples:
                from repro.common.stats import Distribution

                dist = Distribution()
                dist.extend(samples)
                entry["max"] = dist.max
                entry["quantiles"] = {
                    _q_label(q): dist.quantile(q) for q in QUANTILES
                }
            histograms[name] = entry
        return {
            "counters": dict(sorted(counters.items())),
            "gauges": dict(sorted(gauges.items())),
            "histograms": histograms,
        }

    def top_latency(self, k: int = 8) -> list[dict]:
        """The k histogram series with the largest total time, with exact
        quantiles — the "where does the time go" decomposition."""
        rows = []
        for node, registry in self._registries.items():
            for family in registry.collect():
                if family["type"] != "histogram":
                    continue
                for series in family["series"]:
                    hist = series["histogram"]
                    if not hist["count"]:
                        continue
                    labels = {
                        name: value
                        for name, value in series["labels"].items()
                        if name != "node"
                    }
                    rows.append(
                        {
                            "family": family["name"],
                            "node": node,
                            "labels": labels,
                            "count": hist["count"],
                            "total_ns": hist["sum"],
                            "max_ns": hist["max"],
                            "quantiles": hist["quantiles"],
                        }
                    )
        rows.sort(key=lambda r: (-r["total_ns"], r["family"], r["node"]))
        return rows[:k]

    def format_top(self, k: int = 8) -> str:
        """Aligned text table of :meth:`top_latency` in microseconds."""
        rows = self.top_latency(k)
        if not rows:
            return "(no latency samples recorded)"
        headers = ("family", "node", "labels", "n", "p50_us", "p95_us", "p99_us", "max_us", "total_us")
        table = [headers]
        for row in rows:
            labels = ",".join(f"{n}={v}" for n, v in sorted(row["labels"].items()))
            table.append(
                (
                    row["family"],
                    row["node"],
                    labels or "-",
                    str(row["count"]),
                    f"{row['quantiles']['0.5'] / 1e3:.2f}",
                    f"{row['quantiles']['0.95'] / 1e3:.2f}",
                    f"{row['quantiles']['0.99'] / 1e3:.2f}",
                    f"{row['max_ns'] / 1e3:.2f}",
                    f"{row['total_ns'] / 1e3:.2f}",
                )
            )
        widths = [max(len(r[i]) for r in table) for i in range(len(headers))]
        out = []
        for i, row in enumerate(table):
            out.append("  ".join(cell.ljust(widths[j]) for j, cell in enumerate(row)).rstrip())
            if i == 0:
                out.append("  ".join("-" * w for w in widths))
        return "\n".join(out)
