"""Deterministic distributed span tracing with critical-path attribution.

The metrics plane (PR 3) can say *that* a latency quantile moved; this
module says *where the nanoseconds went*. A :class:`SpanSink` records a
tree of spans per logical operation — RPC dispatch, server queueing delay
(from :mod:`repro.rpc.overload`), service time, fabric reads/writes, retry
backoff, hedged waits, migration hops — with start/end taken from the one
:class:`~repro.common.clock.SimClock`, so a given seed produces
byte-identical traces on every replay.

Critical-path attribution rides on the clock itself: the sink installs an
advance listener (:meth:`SimClock.set_advance_listener`) and charges every
applied delta to exactly one of the :data:`COMPONENTS` — the innermost
open span whose category maps to a component (``rpc`` → service, ``queue``
→ queue, ``fabric`` → fabric, …), or the top of an explicit override stack
(retry backoff and hedged waits run under nested rpc spans, so the channel
and store push ``retry``/``hedge`` overrides around them). Because each
advance lands in exactly one bucket, a root span's components sum to its
duration **exactly, in integer nanoseconds** — the sum check the workload
report's ``latency_attribution`` section is built on.

Sampling never touches attribution (components accumulate for every op);
it only gates which span trees are *retained* for export: deterministic
head sampling from a dedicated stream of the shared RNG tree, plus
tail-based always-keep for errors/sheds and for ops in the slowest
percentile observed so far. Retained traces export as Chrome trace-event
JSON (``chrome://tracing`` / Perfetto) and as a JSON snapshot
(``python -m repro trace``).

Independently of sampling, every finished span also lands in a per-node
:class:`FlightRecorder` — a bounded ring of the most recent spans, dumped
post-mortem when a simtest oracle violation or a chaos determinism diff
fires, so the shrunk reproducer ships with the events leading up to the
failure. The same ring backs the legacy ``Tracer(ring=True)`` mode.

Like the metrics plane, everything is opt-in: components hold ``None``
handles when tracing is off (a single ``is None`` test on the hot path),
the listener is never installed, and simulated time is bit-identical with
tracing on or off — the sink only reads the clock, never advances it, and
its sampling stream is an independent child of the RNG tree.
"""

from __future__ import annotations

import json
import os
from bisect import insort
from collections import deque
from dataclasses import dataclass, field

SPAN_SCHEMA_VERSION = 1

#: The critical-path components every traced op's latency decomposes into.
COMPONENTS = (
    "cache", "client", "fabric", "hedge", "pipeline", "queue", "retry",
    "service",
)

#: Components that exist in every root's bucket dict from the moment it
#: opens. ``pipeline`` (async RPC overlap accounting) is *materialized on
#: first charge* instead: a sync-mode run never charges it, so its roots
#: keep exactly these keys and the TRACE artifacts from before the async
#: plane existed replay byte-identical.
BASE_COMPONENTS = (
    "cache", "client", "fabric", "hedge", "queue", "retry", "service",
)

#: The component set before tiering existed; the workload report keeps
#: emitting exactly these buckets when a scenario runs without a tiering
#: block, so legacy BENCH artifacts stay byte-identical.
LEGACY_COMPONENTS = ("client", "fabric", "hedge", "queue", "retry", "service")

#: Span categories that pin clock advances to a component. A category not
#: listed here (``op``, ``store``, ``migrate``, …) inherits the innermost
#: mapped ancestor; with no mapped ancestor the time is "client" — the
#: residual the operation spent outside any modelled server/fabric wait.
CATEGORY_COMPONENTS = {
    "cache": "cache",
    "client": "client",
    "fabric": "fabric",
    "hedge": "hedge",
    "pipeline": "pipeline",
    "queue": "queue",
    "retry": "retry",
    "rpc": "service",
    "rpc.server": "service",
}


@dataclass(frozen=True)
class SpanConfig:
    """Retention knobs for one :class:`SpanSink`.

    ``sample_rate`` is the head-sampling probability (decided at root open
    from the sink's dedicated RNG stream); ``tail_percentile`` always keeps
    roots at or above that percentile of durations observed so far (plus
    every errored/shed op) regardless of the head decision;
    ``flight_capacity`` bounds each node's flight-recorder ring;
    ``max_traces`` caps retained traces so a long run cannot grow without
    bound (overflow is counted, never silent).
    """

    sample_rate: float = 1.0
    tail_percentile: float = 0.99
    flight_capacity: int = 512
    max_traces: int = 100_000

    def validate(self) -> None:
        if not 0.0 <= self.sample_rate <= 1.0:
            raise ValueError("sample_rate must be within [0, 1]")
        if not 0.0 <= self.tail_percentile <= 1.0:
            raise ValueError("tail_percentile must be within [0, 1]")
        if self.flight_capacity <= 0:
            raise ValueError("flight_capacity must be positive")
        if self.max_traces < 0:
            raise ValueError("max_traces must be non-negative")


@dataclass(frozen=True)
class SpanRecord:
    """One finished span of simulated time."""

    trace_id: str
    span_id: str
    parent_id: str | None
    category: str
    name: str
    node: str
    start_ns: int
    duration_ns: int
    status: str = "ok"
    args: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "category": self.category,
            "name": self.name,
            "node": self.node,
            "start_ns": self.start_ns,
            "duration_ns": self.duration_ns,
            "status": self.status,
            "args": self.args,
        }


class FlightRecorder:
    """Bounded ring of the most recent recorded events.

    The post-mortem primitive shared by the spans plane (one ring per
    node) and the legacy ``Tracer(ring=True)`` mode: appends past capacity
    evict the oldest event and bump ``dropped``, so a dump always holds
    the events *leading up to* a failure rather than the boot sequence,
    with truncation visible rather than silent.
    """

    __slots__ = ("_ring", "dropped")

    def __init__(self, capacity: int = 512):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._ring: deque = deque(maxlen=capacity)
        self.dropped = 0

    @property
    def capacity(self) -> int:
        return self._ring.maxlen

    @property
    def ring(self) -> deque:
        """The backing deque (read path for the legacy Tracer adapter)."""
        return self._ring

    def record(self, event) -> None:
        if len(self._ring) == self._ring.maxlen:
            self.dropped += 1
        self._ring.append(event)

    def events(self) -> list:
        return list(self._ring)

    def oldest_start_ns(self) -> int:
        return self._ring[0].start_ns if self._ring else 0

    def __len__(self) -> int:
        return len(self._ring)

    def __iter__(self):
        return iter(self._ring)


class _OpenSpan:
    """A span being measured; context manager handed out by ``span()``.

    Roots (opened with an empty stack) additionally carry the attribution
    buckets and the sampling decision. The object stays readable after the
    ``with`` block closes — the workload runner reads ``duration_ns`` and
    ``components`` and may fold the op's pre-execution dispatch wait into
    the queue bucket via :meth:`add_component`.
    """

    __slots__ = (
        "_sink",
        "category",
        "name",
        "node",
        "args",
        "trace_id",
        "span_id",
        "parent_id",
        "start_ns",
        "duration_ns",
        "status",
        "is_root",
        "components",
        "head_kept",
        "kept",
    )

    def __init__(self, sink, category, name, node, args):
        self._sink = sink
        self.category = category
        self.name = name
        self.node = node
        self.args = args
        self.trace_id = ""
        self.span_id = ""
        self.parent_id = None
        self.start_ns = 0
        self.duration_ns = 0
        self.status = "ok"
        self.is_root = False
        self.components: dict | None = None
        self.head_kept = False
        self.kept = False

    def __enter__(self) -> "_OpenSpan":
        self._sink._open(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None and self.status == "ok":
            self.status = f"error:{exc_type.__name__}"
        self._sink._close(self)
        return False

    def annotate(self, **args) -> None:
        """Merge *args* into the span's args (visible in every export)."""
        self.args.update(args)

    def add_component(self, component: str, delta_ns: int) -> None:
        """Charge *delta_ns* to a component bucket directly (root spans
        only) — the runner's hook for time spent before the span opened,
        e.g. the open-loop dispatch backlog an op waited out."""
        if self.components is None:
            raise ValueError("add_component is only valid on a root span")
        self.components[component] = (
            self.components.get(component, 0) + int(delta_ns)
        )


class _NullSpan:
    """Inert stand-in handed out while the sink is disabled."""

    __slots__ = ()

    trace_id = ""
    span_id = ""
    parent_id = None
    start_ns = 0
    duration_ns = 0
    status = "ok"
    is_root = False
    head_kept = False
    kept = False

    @property
    def components(self) -> dict:
        return {c: 0 for c in BASE_COMPONENTS}

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def annotate(self, **args) -> None:
        pass

    def add_component(self, component: str, delta_ns: int) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _ComponentOverride:
    """Context manager pinning clock advances to one component."""

    __slots__ = ("_sink", "_component")

    def __init__(self, sink, component):
        self._sink = sink
        self._component = component

    def __enter__(self) -> "_ComponentOverride":
        self._sink._overrides.append(self._component)
        return self

    def __exit__(self, *exc) -> bool:
        self._sink._overrides.pop()
        return False


class SpanSink:
    """The per-cluster span recorder, attribution engine, and exporter.

    Single-threaded like the simulation itself: at most one root span is
    open at a time, so a plain stack models the call tree and the clock
    listener can attribute every advance unambiguously.
    """

    def __init__(self, clock, rng=None, config: SpanConfig | None = None):
        self._clock = clock
        self._rng = rng
        self._config = config or SpanConfig()
        self._config.validate()
        #: When False, ``span()``/``component()`` hand out inert objects
        #: and nothing records — the runner parks the sink during preload.
        self.enabled = True
        self._stack: list[_OpenSpan] = []
        self._overrides: list[str] = []
        self._buffer: list[SpanRecord] = []
        self._traces: list[dict] = []
        self._durations: list[int] = []
        self._flight: dict[str, FlightRecorder] = {}
        self._trace_seq = 0
        self._span_seq = 0
        self.roots_total = 0
        self.kept_head = 0
        self.kept_tail = 0
        self.discarded = 0
        self.traces_overflowed = 0
        clock.set_advance_listener(self._on_advance)

    @property
    def config(self) -> SpanConfig:
        return self._config

    # -- recording -----------------------------------------------------------------

    def span(self, category: str, name: str, node: str = "", **args):
        """Context manager measuring the enclosed simulated time as one
        span; opened with no enclosing span it becomes a trace root."""
        if not self.enabled:
            return _NULL_SPAN
        return _OpenSpan(self, category, name, node, args)

    def component(self, name: str):
        """Context manager overriding attribution of enclosed clock
        advances to *name* (``retry`` around backoff, ``hedge`` around a
        hedged lookup) regardless of the spans that open inside it."""
        if name not in COMPONENTS:
            raise ValueError(f"unknown component {name!r}; one of {COMPONENTS}")
        if not self.enabled:
            return _NULL_SPAN
        return _ComponentOverride(self, name)

    @property
    def current_span_id(self) -> str | None:
        """Innermost open span's id — the exemplar a histogram bucket
        links back to a concrete trace."""
        return self._stack[-1].span_id if self._stack else None

    def _on_advance(self, delta_ns: int) -> None:
        stack = self._stack
        if not stack:
            return
        if self._overrides:
            component = self._overrides[-1]
        else:
            component = "client"
            for span in reversed(stack):
                mapped = CATEGORY_COMPONENTS.get(span.category)
                if mapped is not None:
                    component = mapped
                    break
        buckets = stack[0].components
        buckets[component] = buckets.get(component, 0) + delta_ns

    def _open(self, span: _OpenSpan) -> None:
        span.start_ns = self._clock.now_ns
        self._span_seq += 1
        span.span_id = f"s{self._span_seq:08d}"
        if self._stack:
            root = self._stack[0]
            span.trace_id = root.trace_id
            span.parent_id = self._stack[-1].span_id
        else:
            rid = span.args.get("rid")
            self._trace_seq += 1
            span.trace_id = str(rid) if rid else f"t{self._trace_seq:06d}"
            span.is_root = True
            span.components = {c: 0 for c in BASE_COMPONENTS}
            span.head_kept = self._head_sample()
            self._buffer = []
        self._stack.append(span)

    def _close(self, span: _OpenSpan) -> None:
        popped = self._stack.pop()
        if popped is not span:  # pragma: no cover - nesting bug tripwire
            raise RuntimeError(
                f"span nesting violated: closing {span.name!r} "
                f"but {popped.name!r} is innermost"
            )
        span.duration_ns = self._clock.now_ns - span.start_ns
        record = SpanRecord(
            trace_id=span.trace_id,
            span_id=span.span_id,
            parent_id=span.parent_id,
            category=span.category,
            name=span.name,
            node=span.node,
            start_ns=span.start_ns,
            duration_ns=span.duration_ns,
            status=span.status,
            args=dict(span.args),
        )
        node = record.node or "sim"
        recorder = self._flight.get(node)
        if recorder is None:
            recorder = self._flight[node] = FlightRecorder(
                self._config.flight_capacity
            )
        recorder.record(record)
        self._buffer.append(record)
        if span.is_root:
            self._close_root(span)

    def _head_sample(self) -> bool:
        rate = self._config.sample_rate
        if rate >= 1.0:
            return True
        if rate <= 0.0 or self._rng is None:
            return False
        return self._rng.uniform(0.0, 1.0) < rate

    def _tail_slow(self, duration_ns: int) -> bool:
        """Is this root in the slowest ``1 - tail_percentile`` of all root
        durations observed so far (itself included)? Exact, not an
        estimate — durations are kept sorted, so the answer is the same on
        every replay."""
        pct = self._config.tail_percentile
        if pct <= 0.0:
            return True
        durations = self._durations
        threshold = durations[int(pct * (len(durations) - 1))]
        return duration_ns >= threshold

    def _close_root(self, span: _OpenSpan) -> None:
        self.roots_total += 1
        insort(self._durations, span.duration_ns)
        error = span.status != "ok"
        if span.head_kept:
            self.kept_head += 1
            span.kept = True
        elif error or self._tail_slow(span.duration_ns):
            self.kept_tail += 1
            span.kept = True
        else:
            self.discarded += 1
        if span.kept:
            if len(self._traces) < self._config.max_traces:
                self._traces.append(
                    {
                        "trace_id": span.trace_id,
                        "name": span.name,
                        "category": span.category,
                        "node": span.node,
                        "start_ns": span.start_ns,
                        "duration_ns": span.duration_ns,
                        "status": span.status,
                        # By reference on purpose: the runner folds the
                        # op's pre-execution wait in after close.
                        "components_ns": span.components,
                        "spans": self._buffer,
                    }
                )
            else:
                self.traces_overflowed += 1
        self._buffer = []

    # -- introspection --------------------------------------------------------------

    def traces(self) -> list[dict]:
        """Retained traces (root metadata + finished spans, close order)."""
        return list(self._traces)

    def flight_recorder(self, node: str) -> FlightRecorder | None:
        return self._flight.get(node)

    def sampling_stats(self) -> dict:
        return {
            "roots": self.roots_total,
            "kept_head": self.kept_head,
            "kept_tail": self.kept_tail,
            "discarded": self.discarded,
            "traces_overflowed": self.traces_overflowed,
            "sample_rate": self._config.sample_rate,
            "tail_percentile": self._config.tail_percentile,
        }

    # -- export ---------------------------------------------------------------------

    def to_chrome_trace(self) -> dict:
        """Chrome trace-event JSON over the retained traces (complete 'X'
        events, microsecond timestamps, one pid per node) — the same shape
        the legacy Tracer exports, loadable in Perfetto."""
        events = []
        for trace in self._traces:
            for span in trace["spans"]:
                args = dict(span.args)
                args["trace_id"] = span.trace_id
                args["span_id"] = span.span_id
                if span.parent_id is not None:
                    args["parent_id"] = span.parent_id
                if span.status != "ok":
                    args["status"] = span.status
                events.append(
                    {
                        "ph": "X",
                        "cat": span.category,
                        "name": span.name,
                        "ts": span.start_ns / 1e3,
                        "dur": span.duration_ns / 1e3,
                        "pid": span.node or "sim",
                        "tid": span.category,
                        "args": args,
                    }
                )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: "str | os.PathLike[str]") -> None:
        with open(os.fspath(path), "w", encoding="utf-8") as fh:
            json.dump(self.to_chrome_trace(), fh, sort_keys=True)
            fh.write("\n")

    def snapshot(self) -> dict:
        """The JSON snapshot ``python -m repro trace`` emits."""
        return {
            "schema_version": SPAN_SCHEMA_VERSION,
            "sampling": self.sampling_stats(),
            "traces": [
                {
                    "trace_id": trace["trace_id"],
                    "name": trace["name"],
                    "category": trace["category"],
                    "node": trace["node"],
                    "start_ns": trace["start_ns"],
                    "duration_ns": trace["duration_ns"],
                    "status": trace["status"],
                    "components_ns": dict(trace["components_ns"]),
                    "spans": [record.to_dict() for record in trace["spans"]],
                }
                for trace in self._traces
            ],
        }

    def flight_dump(self) -> dict:
        """All per-node flight-recorder rings as plain data — what gets
        written next to a shrunk simtest reproducer. Deterministic: the
        same seed replay produces a byte-identical dump."""
        return {
            "schema_version": SPAN_SCHEMA_VERSION,
            "nodes": {
                name: {
                    "capacity": recorder.capacity,
                    "dropped": recorder.dropped,
                    "spans": [record.to_dict() for record in recorder],
                }
                for name, recorder in sorted(self._flight.items())
            },
        }

    def write_flight(self, path: "str | os.PathLike[str]") -> None:
        with open(os.fspath(path), "w", encoding="utf-8") as fh:
            fh.write(json.dumps(self.flight_dump(), indent=2, sort_keys=True))
            fh.write("\n")


class NullSpanSink:
    """API-compatible no-op sink: every handle inert, nothing recorded,
    no clock listener — the explicit spelling of 'tracing off' for call
    sites that prefer a sink-shaped object over a ``None`` check."""

    enabled = False
    current_span_id = None
    roots_total = 0
    kept_head = 0
    kept_tail = 0
    discarded = 0
    traces_overflowed = 0

    def span(self, category: str, name: str, node: str = "", **args):
        return _NULL_SPAN

    def component(self, name: str):
        return _NULL_SPAN

    def traces(self) -> list:
        return []

    def flight_recorder(self, node: str) -> None:
        return None

    def sampling_stats(self) -> dict:
        return {}

    def to_chrome_trace(self) -> dict:
        return {"traceEvents": [], "displayTimeUnit": "ms"}

    def snapshot(self) -> dict:
        return {"schema_version": SPAN_SCHEMA_VERSION, "sampling": {}, "traces": []}

    def flight_dump(self) -> dict:
        return {"schema_version": SPAN_SCHEMA_VERSION, "nodes": {}}


NULL_SPAN_SINK = NullSpanSink()
