"""Transparent coalescing of id-list RPCs into batched wire messages.

The store's chattiest RPCs (Lookup, AddRef, ReleaseRef, NotifyDeleted,
Contains) all carry a single ``object_ids`` list and already have batched
server handlers. In async mode a :class:`CoalescingBuffer` sits between
callers and the wire: submissions within ``batch_window_ns`` of the first
(or until ``max_batch`` ids accumulate) merge into **one** wire message, so
N concurrent cache misses to the same peer cost one round trip instead of N.

Deadline discipline (the latent sync-path bug this module fixes): an entry
whose deadline expires *while it sits in the buffer* is failed fast at
flush time with ``DEADLINE_EXCEEDED`` — it is excluded from the wire
message rather than dispatched as a doomed request that would burn server
queue budget and a retry-budget token on a response nobody can use.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.common.errors import RpcStatusError
from repro.rpc.aio.loop import Future, TaskAttribution
from repro.rpc.status import StatusCode

if TYPE_CHECKING:
    from repro.rpc.aio.channel import AsyncChannel

#: Methods safe to coalesce: request is exactly ``{"object_ids": [...]}`` and
#: the response is splittable per submitter (positionally for Contains, by
#: descriptor object id for Lookup, empty for the notification-style calls).
BATCHABLE_METHODS = ("AddRef", "Contains", "Lookup", "NotifyDeleted", "ReleaseRef")


class _Entry:
    __slots__ = ("object_ids", "expiry_ns", "future", "enqueue_ns", "attr")

    def __init__(self, object_ids, expiry_ns, future, enqueue_ns, attr):
        self.object_ids = object_ids
        self.expiry_ns = expiry_ns  # absolute simulated instant, or None
        self.future = future
        self.enqueue_ns = enqueue_ns
        self.attr = attr


class CoalescingBuffer:
    """One per ``(channel, service, method)``; owned by :class:`AsyncChannel`."""

    __slots__ = ("_channel", "_loop", "_service", "_method", "_window_ns",
                 "_max_batch", "_entries", "_pending_ids", "_epoch")

    def __init__(self, channel: "AsyncChannel", service: str, method: str, *,
                 window_ns: float, max_batch: int):
        if method not in BATCHABLE_METHODS:
            raise ValueError(f"method {method!r} is not batchable")
        self._channel = channel
        self._loop = channel.loop
        self._service = service
        self._method = method
        self._window_ns = max(0.0, float(window_ns))
        self._max_batch = max(1, int(max_batch))
        self._entries: list[_Entry] = []
        self._pending_ids = 0
        self._epoch = 0

    def submit(self, object_ids: list, *, deadline_ns: float | None = None,
               attr: TaskAttribution | None = None) -> Future:
        """Enqueue an id-list call; the future resolves with this submitter's
        slice of the merged response."""
        ids = list(object_ids)
        if not ids:
            raise ValueError("submit() needs at least one object id")
        future = Future(self._loop)
        now = self._loop.now_ns
        # Channel deadlines are relative budgets; pin this entry's budget to
        # an absolute expiry so time spent in the buffer counts against it.
        expiry = None if deadline_ns is None else now + float(deadline_ns)
        entry = _Entry(ids, expiry, future, now, attr)
        self._entries.append(entry)
        self._pending_ids += len(ids)
        if self._pending_ids >= self._max_batch or self._window_ns <= 0.0:
            self._flush()
        elif len(self._entries) == 1:
            epoch = self._epoch
            self._loop.call_later(self._window_ns,
                                  lambda: self._flush_if_current(epoch))
        return future

    def flush_now(self) -> None:
        """Force-dispatch whatever is buffered (used at loop drain points)."""
        if self._entries:
            self._flush()

    def _flush_if_current(self, epoch: int) -> None:
        # The armed window timer is stale if a max_batch flush already ran.
        if epoch == self._epoch and self._entries:
            self._flush()

    def _flush(self) -> None:
        entries, self._entries = self._entries, []
        self._pending_ids = 0
        self._epoch += 1
        now = self._loop.now_ns
        live: list[_Entry] = []
        for entry in entries:
            if entry.expiry_ns is not None and entry.expiry_ns <= now:
                # Fail fast: the deadline expired in the buffer, so dispatching
                # this entry would be a doomed wire message. No retry-budget
                # token is spent and the server never sees it.
                self._channel.aio_counters["batch_expired"] += 1
                entry.future.set_exception(RpcStatusError(
                    StatusCode.DEADLINE_EXCEEDED,
                    f"deadline expired in coalescing buffer for "
                    f"{self._service}.{self._method} (failed fast, not dispatched)"))
            else:
                live.append(entry)
        if not live:
            return
        merged: list = []
        for entry in live:
            if entry.attr is not None:
                entry.attr.hint("pipeline", now - entry.enqueue_ns)
            merged.extend(entry.object_ids)
        expiries = [e.expiry_ns for e in live]
        # The wire call carries the loosest surviving budget, converted back
        # to a relative duration for the channel.
        wire_deadline = (None if any(x is None for x in expiries)
                         else max(0.0, max(expiries) - now))
        self._channel.aio_counters["batches_sent"] += 1
        self._channel.aio_counters["batched_requests"] += len(live)
        self._channel.aio_counters["batched_ids"] += len(merged)
        self._loop.spawn(
            self._dispatch(live, merged, wire_deadline),
            name=f"batch:{self._method}@{self._channel.server_host}",
        )

    def _dispatch(self, live: list[_Entry], merged: list, wire_deadline):
        try:
            response = yield from self._channel.unary_task(
                self._service, self._method, {"object_ids": merged},
                deadline_ns=wire_deadline)
        except Exception as exc:  # noqa: BLE001 — fan the failure out per entry
            for entry in live:
                entry.future.set_exception(exc)
            return None
        offset = 0
        for entry in live:
            span = len(entry.object_ids)
            entry.future.set_result(self._split(response, entry, offset, span))
            offset += span
        return None

    def _split(self, response: dict, entry: _Entry, offset: int, span: int) -> dict:
        if self._method == "Lookup":
            wanted = {bytes(oid) for oid in entry.object_ids}
            found = [d for d in response.get("found", ())
                     if bytes(d.get("object_id", b"")) in wanted]
            return {"found": found, "store": response.get("store")}
        if self._method == "Contains":
            present = list(response.get("present", ()))[offset:offset + span]
            return {"present": present}
        return {}
