"""The async side of the RPC client: pipelined task-based calls.

:class:`AsyncChannel` extends the blocking :class:`~repro.rpc.channel.Channel`
with *task* forms of its calls. Everything observable about an individual
call is kept: the same cost model, retry/backoff ladder, deadline clamping,
retry-budget gate, breaker admission and outcome feedback, and chaos
transport behaviour. What changes is the waiting — instead of advancing the
shared clock inline (which serializes every caller), a task ``yield``s its
transport time to the event loop, so many requests to the same peer overlap
in simulated time.

The sync entry points are untouched: a cluster in ``rpc_mode="sync"`` uses
this class exactly as a ``Channel`` and remains byte-identical to the
unary baseline.

Cost split: a blocking call charges one lump
``(round_trip + bytes * per_byte) * jitter``. A task charges the same shape
split per direction — ``(round_trip/2 + dir_bytes * per_byte) * jitter`` for
the request leg, then server dispatch, then the response leg — because the
server must observe the request *before* the response travels back while
other tasks interleave. Async throughput numbers are new artifacts, so this
split does not need to reproduce sync timings draw-for-draw.
"""

from __future__ import annotations

from repro.common.errors import RpcError, RpcStatusError, ServerOverloadedError
from repro.rpc.channel import Channel
from repro.rpc.codec import decode_message, encode_message
from repro.rpc.aio.batch import BATCHABLE_METHODS, CoalescingBuffer
from repro.rpc.aio.loop import EventLoop, Future, Sleep, TaskAttribution
from repro.rpc.status import StatusCode

#: Counters specific to the async plane. Kept out of the metrics-registry
#: counter group so a sync-mode scrape is byte-identical to the baseline.
AIO_COUNTER_NAMES = (
    "tasks_started",
    "tasks_completed",
    "in_flight_peak",
    "batches_sent",
    "batched_requests",
    "batched_ids",
    "batch_expired",
    "hedges_fired",
)


class AsyncChannel(Channel):
    """A :class:`Channel` that can also run its calls as event-loop tasks."""

    def __init__(self, *args, loop: EventLoop | None = None, **kwargs):
        super().__init__(*args, **kwargs)
        self._loop = loop
        self._in_flight = 0
        self._buffers: dict[tuple[str, str], CoalescingBuffer] = {}
        self.aio_counters: dict[str, int] = {name: 0 for name in AIO_COUNTER_NAMES}

    @property
    def loop(self) -> EventLoop:
        if self._loop is None:
            raise RpcError(
                f"channel to {self._server.host} has no event loop attached")
        return self._loop

    @property
    def server_host(self) -> str:
        return self._server.host

    @property
    def in_flight(self) -> int:
        return self._in_flight

    @property
    def hedge_stagger_ns(self) -> float:
        """Stagger before a scatter-gather lookup hedges to the next peer."""
        return self._config.hedge_stagger_ns

    @property
    def stream_chunk_bytes(self) -> int:
        """Chunk size for streaming bulk transfers in async mode."""
        return self._config.stream_chunk_bytes

    # -- pipelined unary ------------------------------------------------------

    def unary_task(self, service: str, method: str, request: dict | None = None,
                   *, deadline_ns: float | None = None,
                   attr: TaskAttribution | None = None):
        """Generator-coroutine form of :meth:`Channel.unary_call`.

        ``yield from`` it inside another task, or ``loop.spawn`` it directly.
        Raises exactly what the sync call raises; returns the response dict.
        """
        if self._closed:
            raise RpcError(f"channel to {self._server.host} is closed")
        self._breaker_admit()
        deadline = self._effective_deadline(deadline_ns)
        start_ns = self._clock.now_ns
        self._in_flight += 1
        self.aio_counters["tasks_started"] += 1
        if self._in_flight > self.aio_counters["in_flight_peak"]:
            self.aio_counters["in_flight_peak"] = self._in_flight
        try:
            response = yield from self._unary_task_inner(
                service, method, request, deadline, attr)
        except RpcStatusError as exc:
            self._observe_latency(method, start_ns)
            self._breaker_record(exc)
            raise
        finally:
            self._in_flight -= 1
            self.aio_counters["tasks_completed"] += 1
        self._observe_latency(method, start_ns)
        if self._config.hedge_quantile > 0:
            self._latency_samples.add(self._clock.now_ns - start_ns)
        self._breaker_record(None)
        return response

    def _direction_cost_ns(self, nbytes: int) -> float:
        return (
            self._config.round_trip_ns / 2.0
            + nbytes * self._config.per_byte_ns
        ) * self._rng.lognormal_jitter(self._config.jitter_sigma)

    def _sleep_within_deadline(self, cost_ns: float, start_ns: int,
                               deadline_ns: float | None):
        """Task analogue of ``_advance_within_deadline``: sleep *cost_ns* of
        simulated time, clamped at the call deadline (then raise)."""
        if deadline_ns is None:
            yield Sleep(cost_ns)
            return
        remaining = deadline_ns - (self._clock.now_ns - start_ns)
        if cost_ns > remaining:
            yield Sleep(max(0.0, remaining))
            self.counters.inc("deadline_exceeded")
            self.counters.inc("calls_failed")
            raise RpcStatusError(
                StatusCode.DEADLINE_EXCEEDED,
                f"deadline of {deadline_ns / 1e6:.3f} ms exceeded calling "
                f"{self._server.host}",
            )
        yield Sleep(cost_ns)

    def _fail_attempt_task(self, cost_ns: float, start_ns: int,
                           deadline_ns: float | None, last: bool, attempts: int,
                           attempt: int, detail: str,
                           attr: TaskAttribution | None):
        """Task analogue of ``_fail_attempt``: wasted transport + backoff as
        sleeps; repeat-attempt time is hinted to the ``retry`` component."""
        if attempt > 0 and attr is not None:
            attr.hint("retry", cost_ns)
        yield from self._sleep_within_deadline(cost_ns, start_ns, deadline_ns)
        self.counters.inc("attempts_failed")
        if last:
            self.counters.inc("calls_failed")
            raise RpcStatusError(
                StatusCode.UNAVAILABLE, f"{detail} ({attempts} attempts)")
        self._gate_retry(RpcStatusError(
            StatusCode.UNAVAILABLE, f"{detail} (retry budget exhausted)"))
        self.counters.inc("retries")
        backoff = self._backoff_ns(attempt)
        if attr is not None:
            attr.hint("retry", backoff)
        yield from self._sleep_within_deadline(backoff, start_ns, deadline_ns)

    def _unary_task_inner(self, service: str, method: str,
                          request: dict | None, deadline_ns: float | None,
                          attr: TaskAttribution | None):
        wire_request = encode_message(request or {})
        attempts = 1 + max(0, self._config.max_retries)
        start_ns = self._clock.now_ns
        for attempt in range(attempts):
            last = attempt == attempts - 1
            if self._transport_silent():
                yield from self._fail_attempt_task(
                    self._chaos.unanswered_wait_ns, start_ns, deadline_ns,
                    last, attempts, attempt,
                    f"no response from {self._server.host}", attr)
                continue
            if self._attempt_fails():
                yield from self._fail_attempt_task(
                    self._cost_ns(len(wire_request), 0), start_ns, deadline_ns,
                    last, attempts, attempt,
                    f"connection to {self._server.host} lost", attr)
                continue
            if attempt > 0 and attr is not None:
                attr.hint("retry", self._cost_ns(0, 0))
            yield from self._sleep_within_deadline(
                self._direction_cost_ns(len(wire_request)), start_ns, deadline_ns)
            status, wire_response, detail = self._server.dispatch_wire(
                service,
                method,
                wire_request,
                correlation_id=(
                    self._correlation.current
                    if self._correlation is not None
                    else None
                ),
                deadline_ns=(
                    deadline_ns - (self._clock.now_ns - start_ns)
                    if deadline_ns is not None
                    else None
                ),
            )
            yield from self._sleep_within_deadline(
                self._direction_cost_ns(len(wire_response)), start_ns, deadline_ns)
            self.counters.inc("calls")
            self.counters.inc("bytes_sent", len(wire_request))
            self.counters.inc("bytes_received", len(wire_response))
            if status is StatusCode.UNAVAILABLE:
                self.counters.inc("attempts_failed")
                if last:
                    self.counters.inc("calls_failed")
                    raise RpcStatusError(status, detail)
                self._gate_retry(RpcStatusError(status, detail))
                self.counters.inc("retries")
                backoff = self._backoff_ns(attempt)
                if attr is not None:
                    attr.hint("retry", backoff)
                yield from self._sleep_within_deadline(
                    backoff, start_ns, deadline_ns)
                continue
            if status is StatusCode.RESOURCE_EXHAUSTED:
                self.counters.inc("attempts_shed")
                err = ServerOverloadedError(detail)
                if last:
                    self.counters.inc("calls_failed")
                    raise err
                self._gate_retry(err)
                self.counters.inc("retries")
                backoff = self._backoff_ns(attempt)
                if attr is not None:
                    attr.hint("retry", backoff)
                yield from self._sleep_within_deadline(
                    backoff, start_ns, deadline_ns)
                continue
            if status is not StatusCode.OK:
                self.counters.inc("calls_failed")
                raise RpcStatusError(status, detail)
            return decode_message(wire_response)
        raise AssertionError("unreachable")  # pragma: no cover

    # -- coalesced id-list calls ----------------------------------------------

    def batched_call(self, service: str, method: str, object_ids: list, *,
                     deadline_ns: float | None = None,
                     attr: TaskAttribution | None = None) -> Future:
        """Submit an id-list call to this channel's coalescing buffer.

        Returns a future resolving with the caller's slice of the merged
        response. Calls landing within ``batch_window_ns`` of each other (or
        until ``max_batch`` ids accumulate) share one wire message.
        """
        if method not in BATCHABLE_METHODS:
            raise ValueError(f"method {method!r} is not batchable")
        key = (service, method)
        buffer = self._buffers.get(key)
        if buffer is None:
            buffer = CoalescingBuffer(
                self, service, method,
                window_ns=self._config.batch_window_ns,
                max_batch=self._config.max_batch,
            )
            self._buffers[key] = buffer
        return buffer.submit(
            object_ids,
            deadline_ns=self._effective_deadline(deadline_ns),
            attr=attr,
        )

    def flush_batches(self) -> None:
        """Force-dispatch every coalescing buffer (drain-point hook)."""
        for buffer in self._buffers.values():
            buffer.flush_now()
