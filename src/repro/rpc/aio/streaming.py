"""Chunked bulk transfer over the fabric, shareable with the event loop.

Migration (``begin_adopt``), scrub repair / replication (``create_replica``)
and tier promotion all pull a whole object's payload through a
:class:`~repro.thymesisflow.aperture.RemoteRegion` in one
``view() + charge_read(total)`` lump today. These helpers split the pull
into ``chunk_bytes`` slices:

* :func:`stream_pull` — synchronous form used from RPC handlers (which run
  inline inside a dispatch, where yielding is impossible);
* :func:`stream_pull_task` — generator form that yields the scheduler slot
  between chunks, so a bulk transfer no longer blocks every other in-flight
  task for its full duration — RPC completions interleave at chunk
  granularity.

Both charge exactly the same link cost model (``charge_read`` per slice);
sync-mode clusters never call either, keeping the baseline draw sequence —
and therefore every standing artifact — untouched.
"""

from __future__ import annotations

from repro.rpc.aio.loop import Sleep

DEFAULT_CHUNK_BYTES = 64 * 1024


def stream_pull(region, offset: int, nbytes: int, *,
                chunk_bytes: int = DEFAULT_CHUNK_BYTES) -> bytes:
    """Pull ``nbytes`` at ``offset`` from *region* in timed chunks."""
    chunk_bytes = max(1, int(chunk_bytes))
    out = bytearray(nbytes)
    done = 0
    while done < nbytes:
        n = min(chunk_bytes, nbytes - done)
        src = region.view(offset + done, n)
        region.charge_read(n)
        out[done:done + n] = src
        done += n
    return bytes(out)


def stream_pull_task(region, offset: int, nbytes: int, *,
                     chunk_bytes: int = DEFAULT_CHUNK_BYTES):
    """Generator-coroutine form of :func:`stream_pull`: yields between
    chunks so concurrent tasks interleave with the bulk transfer."""
    chunk_bytes = max(1, int(chunk_bytes))
    out = bytearray(nbytes)
    done = 0
    while done < nbytes:
        n = min(chunk_bytes, nbytes - done)
        src = region.view(offset + done, n)
        region.charge_read(n)
        out[done:done + n] = src
        done += n
        if done < nbytes:
            yield Sleep(0.0)
    return bytes(out)
