"""Deterministic cooperative event loop and async RPC core.

``repro.rpc`` reproduces the paper's synchronous unary gRPC stack: one
blocking request in flight per channel, so concurrent clients serialize
behind the fabric (the Fig 6 bottleneck). This package is the fix named by
ROADMAP item 1 — an event-driven scheduler on :class:`~repro.common.clock.SimClock`
that keeps many requests in flight per peer while staying **bit-exactly
deterministic**:

* :class:`EventLoop` — a heap of ``(wake_ns, tie, seq)``-ordered events over
  generator-coroutine tasks. Ties at the same simulated instant break by a
  seeded random rank (never wall-clock, never hash order), so two runs of
  the same seed interleave identically.
* :class:`AsyncChannel` — extends :class:`~repro.rpc.channel.Channel` with
  non-blocking task-based calls: pipelined unary calls, transparent
  coalescing of id-list RPCs into batched wire messages
  (:class:`CoalescingBuffer`), and chunked streaming pulls.

Sync callers never touch this package — ``rpc_mode="sync"`` preserves the
one-in-flight semantics (and every standing BENCH/TRACE artifact) exactly.
"""

from repro.rpc.aio.loop import (
    EventLoop,
    EventLoopError,
    Future,
    Sleep,
    Task,
    TaskAttribution,
)
from repro.rpc.aio.batch import CoalescingBuffer, BATCHABLE_METHODS
from repro.rpc.aio.channel import AsyncChannel
from repro.rpc.aio.streaming import stream_pull, stream_pull_task

__all__ = [
    "EventLoop",
    "EventLoopError",
    "Future",
    "Sleep",
    "Task",
    "TaskAttribution",
    "CoalescingBuffer",
    "BATCHABLE_METHODS",
    "AsyncChannel",
    "stream_pull",
    "stream_pull_task",
]
