"""A deterministic cooperative event loop over :class:`SimClock`.

Python's ``asyncio`` cannot drive simulated time reproducibly: its ready
queue breaks ties by insertion order *of wall-clock callbacks* and its timers
read the host clock, so two runs of the same seed interleave differently.
This loop replaces both with simulation-native rules:

* **Time** is the cluster's single :class:`~repro.common.clock.SimClock`.
  An event scheduled for ``wake_ns`` runs after the clock has advanced to
  (at least) that instant; events that come due while the clock is already
  past them run immediately at the current time — simulated time never
  rewinds.
* **Tie-breaking is seeded.** Events at the same ``wake_ns`` are ordered by
  a random rank drawn from a dedicated RNG stream at *schedule* time, with
  a monotone sequence number as the final tiebreak. No wall clock, no
  ``id()``/hash order, no dict iteration order — the heap pop sequence is a
  pure function of the seed, which is what makes run-twice replay
  bit-identical even with hundreds of tasks in flight.
* **Tasks are generator coroutines.** A task ``yield``s either a
  :class:`Sleep` (suspend for a span of simulated time) or a
  :class:`Future`/:class:`Task` (suspend until it resolves); anything the
  task returns becomes its future's result. Sub-operations compose with
  ``yield from``, so one logical op forms a spine of resume points — which
  is also what lets :class:`TaskAttribution` account every nanosecond of an
  op's latency exactly.
"""

from __future__ import annotations

import heapq
from typing import Callable, Generator, Iterable

from repro.common.clock import SimClock
from repro.common.errors import ReproError
from repro.common.rng import DeterministicRng


class EventLoopError(ReproError):
    """Scheduler misuse, or a deadlock (an awaited future that can never resolve)."""


class Sleep:
    """Awaitable marker: suspend the yielding task for *delta_ns* of simulated time.

    Negative deltas clamp to zero; ``Sleep(0)`` yields the scheduler slot so
    other due events may run at the same instant (cooperative fairness).
    """

    __slots__ = ("delta_ns",)

    def __init__(self, delta_ns: float):
        self.delta_ns = float(delta_ns)

    def __repr__(self) -> str:
        return f"Sleep({self.delta_ns:.0f} ns)"


class Future:
    """A one-shot completion slot resolved by the loop or by another task.

    Waiter wake-ups are *scheduled* (at the current instant, with a fresh
    seeded tie rank), never run inline from ``set_result`` — resolution
    order therefore cannot leak the resolver's call stack into the
    interleaving.
    """

    __slots__ = ("_loop", "_done", "_value", "_exc", "_callbacks")

    def __init__(self, loop: "EventLoop"):
        self._loop = loop
        self._done = False
        self._value = None
        self._exc: BaseException | None = None
        self._callbacks: list[Callable[["Future"], None]] = []

    def done(self) -> bool:
        return self._done

    def result(self):
        if not self._done:
            raise EventLoopError("future is not resolved yet")
        if self._exc is not None:
            raise self._exc
        return self._value

    def exception(self) -> BaseException | None:
        if not self._done:
            raise EventLoopError("future is not resolved yet")
        return self._exc

    def set_result(self, value) -> None:
        self._settle(value, None)

    def set_exception(self, exc: BaseException) -> None:
        self._settle(None, exc)

    def add_done_callback(self, fn: Callable[["Future"], None]) -> None:
        if self._done:
            self._loop._schedule_now(lambda: fn(self))
        else:
            self._callbacks.append(fn)

    def _settle(self, value, exc: BaseException | None) -> None:
        if self._done:
            raise EventLoopError("future resolved twice")
        self._done = True
        self._value = value
        self._exc = exc
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            self._loop._schedule_now(lambda fn=fn: fn(self))


class Task:
    """A spawned generator coroutine; ``future`` resolves with its return value."""

    __slots__ = ("name", "future", "_gen")

    def __init__(self, loop: "EventLoop", gen: Generator, name: str):
        self.name = name
        self.future = Future(loop)
        self._gen = gen

    def __repr__(self) -> str:
        state = "done" if self.future.done() else "running"
        return f"Task({self.name!r}, {state})"


class EventLoop:
    """The scheduler: a heap of ``(wake_ns, tie_rank, seq, callback)`` events."""

    __slots__ = ("_clock", "_rng", "_heap", "_seq", "_spawned", "_driving")

    def __init__(self, clock: SimClock, rng: DeterministicRng):
        self._clock = clock
        self._rng = rng.spawn("aio-loop")
        self._heap: list[tuple[int, int, int, Callable[[], None]]] = []
        self._seq = 0
        self._spawned = 0
        self._driving = False

    @property
    def driving(self) -> bool:
        """True while an event handler (i.e. task code) is on the stack.

        Synchronous facades check this to decide between *driving* the loop
        (top-level call: spawn the task form and run it to completion) and
        *executing inline* (already inside a task: blocking semantics are
        safe, re-entering ``run_until_complete`` is not).
        """
        return self._driving

    @property
    def clock(self) -> SimClock:
        return self._clock

    @property
    def now_ns(self) -> int:
        return self._clock.now_ns

    def pending(self) -> int:
        """Number of scheduled events not yet run."""
        return len(self._heap)

    # -- scheduling ----------------------------------------------------------

    def call_at(self, wake_ns: float, fn: Callable[[], None]) -> None:
        """Run *fn* once the clock reaches *wake_ns* (clamped to now)."""
        wake = max(int(wake_ns), self._clock.now_ns)
        tie = self._rng.integer(0, 1 << 30)
        heapq.heappush(self._heap, (wake, tie, self._seq, fn))
        self._seq += 1

    def call_later(self, delta_ns: float, fn: Callable[[], None]) -> None:
        self.call_at(self._clock.now_ns + max(0, int(round(delta_ns))), fn)

    def _schedule_now(self, fn: Callable[[], None]) -> None:
        self.call_at(self._clock.now_ns, fn)

    def spawn(self, gen: Generator, name: str | None = None) -> Task:
        """Schedule generator coroutine *gen* to start at the current instant."""
        task = Task(self, gen, name or f"task-{self._spawned}")
        self._spawned += 1
        self._schedule_now(lambda: self._step(task, None, None))
        return task

    # -- task stepping -------------------------------------------------------

    def _step(self, task: Task, value, exc: BaseException | None) -> None:
        gen = task._gen
        while True:
            try:
                if exc is not None:
                    pending_exc, exc = exc, None
                    awaited = gen.throw(pending_exc)
                else:
                    awaited = gen.send(value)
            except StopIteration as stop:
                task.future.set_result(stop.value)
                return
            except Exception as err:  # noqa: BLE001 — delivered via future.result()
                task.future.set_exception(err)
                return
            if isinstance(awaited, Sleep):
                self.call_later(max(0.0, awaited.delta_ns),
                                lambda: self._step(task, None, None))
                return
            if isinstance(awaited, Task):
                awaited = awaited.future
            if isinstance(awaited, Future):
                if awaited._done:
                    # Continue inline: a resolved await costs no scheduler hop.
                    value, exc = awaited._value, awaited._exc
                    continue
                awaited._callbacks.append(
                    lambda fut, task=task: self._step(task, fut._value, fut._exc))
                return
            raise EventLoopError(
                f"task {task.name!r} yielded {awaited!r}; tasks may only yield "
                f"Sleep, Future, or Task")

    # -- composition ---------------------------------------------------------

    def completed(self, value=None) -> Future:
        """An already-resolved future (awaiting it continues inline)."""
        fut = Future(self)
        fut._done = True
        fut._value = value
        return fut

    def gather(self, futures: Iterable[Future | Task]) -> Future:
        """Resolve with a list of results in input order once *all* resolve.

        A child's exception is captured *as its slot value* rather than
        failing the gather — scatter-gather callers inspect per-peer results
        (``isinstance(x, Exception)``) and decide what is fatal.
        """
        waits = [f.future if isinstance(f, Task) else f for f in futures]
        out = Future(self)
        results: list = [None] * len(waits)
        remaining = len(waits)
        if remaining == 0:
            out.set_result([])
            return out

        def _arm(i: int, fut: Future) -> None:
            def _on_done(done: Future) -> None:
                nonlocal remaining
                results[i] = done._exc if done._exc is not None else done._value
                remaining -= 1
                if remaining == 0:
                    out.set_result(results)

            fut.add_done_callback(_on_done)

        for i, fut in enumerate(waits):
            _arm(i, fut)
        return out

    def race(self, futures: Iterable[Future | Task]) -> Future:
        """Resolve with ``(index, result_or_exception)`` of the first to settle.

        Losers keep running harmlessly (hedged lookups are idempotent); their
        results are dropped.
        """
        waits = [f.future if isinstance(f, Task) else f for f in futures]
        if not waits:
            raise EventLoopError("race() needs at least one future")
        out = Future(self)

        def _arm(i: int, fut: Future) -> None:
            def _on_done(done: Future) -> None:
                if not out._done:
                    out.set_result(
                        (i, done._exc if done._exc is not None else done._value))

            fut.add_done_callback(_on_done)

        for i, fut in enumerate(waits):
            _arm(i, fut)
        return out

    # -- driving -------------------------------------------------------------

    def _run_next(self) -> None:
        wake, _tie, _seq, fn = heapq.heappop(self._heap)
        if wake > self._clock.now_ns:
            self._clock.advance(wake - self._clock.now_ns)
        prev, self._driving = self._driving, True
        try:
            fn()
        finally:
            self._driving = prev

    def run_until(self, deadline_ns: float) -> None:
        """Run every event due at or before *deadline_ns*, then advance to it.

        Events run inside handlers may advance the clock past their wake time;
        such past-due events still run (at the current instant) as long as
        their wake is within the deadline.
        """
        deadline = int(deadline_ns)
        while self._heap and self._heap[0][0] <= deadline:
            self._run_next()
        if self._clock.now_ns < deadline:
            self._clock.advance(deadline - self._clock.now_ns)

    def run_until_complete(self, awaitable: Future | Task):
        """Drive the loop until *awaitable* resolves; return (or raise) its result."""
        future = awaitable.future if isinstance(awaitable, Task) else awaitable
        while not future._done:
            if not self._heap:
                raise EventLoopError(
                    "deadlock: awaited future can never resolve (heap is empty)")
            self._run_next()
        return future.result()

    def drain(self, max_events: int = 5_000_000) -> int:
        """Run until no events remain; returns the number of events run."""
        ran = 0
        while self._heap:
            self._run_next()
            ran += 1
            if ran > max_events:
                raise EventLoopError(
                    f"drain exceeded {max_events} events; runaway task?")
        return ran


class TaskAttribution:
    """ns-exact latency attribution for one logical op run as a task tree.

    The sync runner attributes time through the global span stack, which
    assumes exactly one op is on the clock at a time. Under the event loop
    many ops advance the shared clock concurrently, so a stack cannot say
    whose wait a given advance was. Instead each op carries one of these:
    the op's ``yield from`` spine calls :meth:`settle` at its own resume
    points, and the elapsed lump since the previous settle is split between
    *hinted* waits recorded by children in the meantime (coalescing-buffer
    ``pipeline`` delay, ``retry`` backoff, ``hedge`` stagger — clamped so
    hints never overdraw the lump) and the caller's default component. The
    components therefore sum to the observed latency exactly, by
    construction rather than by measurement.
    """

    __slots__ = ("_clock", "_mark", "components", "_hints")

    HINTS = ("pipeline", "retry", "hedge")

    def __init__(self, clock: SimClock, issue_ns: int):
        self._clock = clock
        self._mark = int(issue_ns)
        self.components: dict[str, int] = {}
        self._hints: dict[str, int] = {}

    def charge(self, component: str, delta_ns: int) -> None:
        """Attribute *delta_ns* directly (used for pre-measured intervals)."""
        delta = int(delta_ns)
        if delta:
            self.components[component] = self.components.get(component, 0) + delta

    def hint(self, component: str, delta_ns: float) -> None:
        """Record that part of the lump in progress was spent on *component*."""
        delta = int(round(delta_ns))
        if delta > 0:
            self._hints[component] = self._hints.get(component, 0) + delta

    def settle(self, default: str) -> None:
        """Close the lump since the previous settle: hinted waits first (in
        fixed priority order), remainder to *default*."""
        now = self._clock.now_ns
        lump = max(0, now - self._mark)
        self._mark = now
        for name in self.HINTS:
            hinted = self._hints.get(name, 0)
            take = min(hinted, lump)
            if take:
                self.charge(name, take)
                lump -= take
        self._hints.clear()
        if lump:
            self.charge(default, lump)

    def total_ns(self) -> int:
        return sum(self.components.values())
