"""Tag-length-value message codec (the Protocol Buffers stand-in).

Messages are ``dict[str, value]`` where values are ``None``, ``bool``,
``int``, ``float``, ``bytes``, ``str``, lists of values, or nested dicts.
Encoding is deterministic (keys in insertion order) and self-describing, so
decode needs no schema. Every RPC in the framework round-trips through this
codec, which keeps serialized sizes — and therefore the per-byte RPC cost —
honest.
"""

from __future__ import annotations

import struct

from repro.common.errors import RpcError

_T_NONE = 0
_T_FALSE = 1
_T_TRUE = 2
_T_INT = 3
_T_FLOAT = 4
_T_BYTES = 5
_T_STR = 6
_T_LIST = 7
_T_DICT = 8

_MAX_DEPTH = 16


class MessageError(RpcError):
    """Malformed message (encode of unsupported type / corrupt decode)."""


def _encode_value(value, out: bytearray, depth: int) -> None:
    if depth > _MAX_DEPTH:
        raise MessageError("message nesting too deep")
    if value is None:
        out.append(_T_NONE)
    elif value is True:
        out.append(_T_TRUE)
    elif value is False:
        out.append(_T_FALSE)
    elif isinstance(value, int):
        out.append(_T_INT)
        # Zig-zag varint: compact for the small non-negative ints that
        # dominate (sizes, counts) while supporting negatives.
        zz = (value << 1) ^ (value >> 63) if -(1 << 63) <= value < (1 << 63) else None
        if zz is None:
            raise MessageError(f"integer out of 64-bit range: {value}")
        zz &= (1 << 64) - 1
        while True:
            byte = zz & 0x7F
            zz >>= 7
            if zz:
                out.append(byte | 0x80)
            else:
                out.append(byte)
                break
    elif isinstance(value, float):
        out.append(_T_FLOAT)
        out += struct.pack(">d", value)
    elif isinstance(value, (bytes, bytearray, memoryview)):
        data = bytes(value)
        out.append(_T_BYTES)
        out += struct.pack(">I", len(data))
        out += data
    elif isinstance(value, str):
        data = value.encode("utf-8")
        out.append(_T_STR)
        out += struct.pack(">I", len(data))
        out += data
    elif isinstance(value, (list, tuple)):
        out.append(_T_LIST)
        out += struct.pack(">I", len(value))
        for item in value:
            _encode_value(item, out, depth + 1)
    elif isinstance(value, dict):
        out.append(_T_DICT)
        out += struct.pack(">I", len(value))
        for key, item in value.items():
            if not isinstance(key, str):
                raise MessageError(f"message keys must be str, got {type(key).__name__}")
            kdata = key.encode("utf-8")
            if len(kdata) > 0xFFFF:
                raise MessageError("message key too long")
            out += struct.pack(">H", len(kdata))
            out += kdata
            _encode_value(item, out, depth + 1)
    else:
        raise MessageError(f"unsupported message value type {type(value).__name__}")


def encode_message(message: dict) -> bytes:
    """Serialize a message dict to wire bytes."""
    if not isinstance(message, dict):
        raise MessageError("a message must be a dict")
    out = bytearray()
    _encode_value(message, out, 0)
    return bytes(out)


class _Reader:
    __slots__ = ("data", "pos")

    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def take(self, n: int) -> bytes:
        if self.pos + n > len(self.data):
            raise MessageError("truncated message")
        chunk = self.data[self.pos : self.pos + n]
        self.pos += n
        return chunk

    def byte(self) -> int:
        return self.take(1)[0]

    def u16(self) -> int:
        return struct.unpack(">H", self.take(2))[0]

    def u32(self) -> int:
        return struct.unpack(">I", self.take(4))[0]

    def varint(self) -> int:
        shift = 0
        result = 0
        while True:
            if shift > 70:
                raise MessageError("varint too long")
            b = self.byte()
            result |= (b & 0x7F) << shift
            if not b & 0x80:
                break
            shift += 7
        # un-zig-zag
        return (result >> 1) ^ -(result & 1)


def _decode_value(r: _Reader, depth: int):
    if depth > _MAX_DEPTH:
        raise MessageError("message nesting too deep")
    tag = r.byte()
    if tag == _T_NONE:
        return None
    if tag == _T_TRUE:
        return True
    if tag == _T_FALSE:
        return False
    if tag == _T_INT:
        return r.varint()
    if tag == _T_FLOAT:
        return struct.unpack(">d", r.take(8))[0]
    if tag == _T_BYTES:
        return r.take(r.u32())
    if tag == _T_STR:
        return _decode_utf8(r.take(r.u32()))
    if tag == _T_LIST:
        n = r.u32()
        return [_decode_value(r, depth + 1) for _ in range(n)]
    if tag == _T_DICT:
        n = r.u32()
        out = {}
        for _ in range(n):
            key = _decode_utf8(r.take(r.u16()))
            out[key] = _decode_value(r, depth + 1)
        return out
    raise MessageError(f"unknown wire tag {tag}")


def _decode_utf8(raw: bytes) -> str:
    try:
        return raw.decode("utf-8")
    except UnicodeDecodeError as exc:
        # Corrupt wire bytes must surface as a codec error, never leak a
        # UnicodeDecodeError into RPC handlers.
        raise MessageError(f"invalid UTF-8 in message: {exc}") from exc


def decode_message(data: bytes) -> dict:
    """Deserialize wire bytes back to a message dict."""
    r = _Reader(bytes(data))
    value = _decode_value(r, 0)
    if r.pos != len(r.data):
        raise MessageError(f"{len(r.data) - r.pos} trailing bytes after message")
    if not isinstance(value, dict):
        raise MessageError("top-level wire value is not a message dict")
    return value
