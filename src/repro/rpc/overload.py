"""Server-side overload control and client-side retry taming.

The paper's prototype assumes every gRPC request is serviced the moment it
arrives; under the traffic plane's open-loop arrivals that makes overload
impossible by construction — a node can never fall behind, so saturation
has no observable shape. This module gives each :class:`~repro.rpc.server
.RpcServer` a finite service rate and a bounded request queue, both
modelled deterministically on the one simulated clock:

* :class:`OverloadModel` — a virtual queue over a single busy-until
  watermark. Admitting a request pushes the watermark out by one service
  time; the backlog between *now* and the watermark is the queueing delay
  a FIFO arrival waits (and, divided by the service time, the queue
  depth). A request that would exceed the bounded depth is **shed** with
  RESOURCE_EXHAUSTED, as is work whose propagated deadline budget is
  already spent or cannot cover the backlog ahead of it (expired-work
  shedding). The model never consumes RNG and only reads the clock, so a
  given arrival sequence replays bit-identically.

* :class:`RetryBudget` — a token bucket on simulated time capping a
  channel's retry amplification: when the budget is dry, a failed call
  surfaces immediately instead of adding more attempts to a peer that is
  already saturated (the classic retry-storm congestion collapse).

* :class:`DeadlineBudget` — bookkeeping for one logical operation that
  spans several RPC hops (a ring-forwarded create, a two-phase migration
  pull): the first hop starts the budget and each subsequent call is
  issued with only the *remaining* time, so a slow first hop shrinks what
  the later hops may spend instead of resetting it.

Everything defaults off (service rate 0 = infinite capacity), keeping the
paper-calibrated figures byte-identical unless a config or a chaos
``OverloadBurst`` makes a server finite.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.clock import NS_PER_S
from repro.common.stats import Distribution
from repro.obs.metrics import CounterGroup


@dataclass(frozen=True)
class Admission:
    """One admission decision.

    ``delay_ns`` is the queueing delay an admitted request waits before
    servicing begins; for a shed request it is 0 (rejection is cheap — the
    whole point). ``queue_len`` is the depth observed at arrival.
    """

    admitted: bool
    delay_ns: float = 0.0
    queue_len: int = 0
    reason: str = ""
    detail: str = ""


class OverloadModel:
    """Deterministic per-server admission/queue model on the sim clock.

    The queue is *virtual*: instead of materialising request objects, the
    model keeps one ``busy_until`` watermark — the simulated instant the
    server finishes everything already admitted. Backlog, queue depth and
    FIFO waiting time all derive from it, which is exactly the M/D/1-style
    bookkeeping needed for deterministic replay (no event loop, no RNG).
    """

    def __init__(self, clock, config=None, *, name: str = ""):
        self._clock = clock
        self._name = name
        self.service_rate_ops_per_s = (
            float(config.service_rate_ops_per_s) if config is not None else 0.0
        )
        self.queue_depth = int(config.queue_depth) if config is not None else 64
        self.queue_discipline = (
            config.queue_discipline if config is not None else "fifo"
        )
        self.shed_expired = config.shed_expired if config is not None else True
        self._busy_until_ns = 0.0
        self.counters = CounterGroup()
        #: Queue depth observed by each arrival (admitted or shed) while
        #: the model is active — the distribution BENCH artifacts report
        #: p99 over. Sheds see the deepest queues, so sampling only admits
        #: would censor exactly the tail the quantile is for.
        self.queue_samples = Distribution()

    # -- configuration -------------------------------------------------------------

    @property
    def service_time_ns(self) -> float:
        """Simulated ns one request occupies the server; 0 = infinite rate."""
        rate = self.service_rate_ops_per_s
        return NS_PER_S / rate if rate > 0 else 0.0

    def set_service_rate(self, ops_per_s: float) -> None:
        """Change the service rate live (simtest's ``set_service_rate`` op)."""
        if ops_per_s < 0:
            raise ValueError("service rate must be non-negative")
        self.service_rate_ops_per_s = float(ops_per_s)

    # -- state ---------------------------------------------------------------------

    def backlog_ns(self, now_ns: float | None = None) -> float:
        """Simulated ns of already-admitted work ahead of a new arrival."""
        now = self._clock.now_ns if now_ns is None else now_ns
        return max(0.0, self._busy_until_ns - now)

    def queue_len(self, now_ns: float | None = None) -> int:
        """Requests currently waiting (backlog divided by service time)."""
        service = self.service_time_ns
        if service <= 0:
            return 0
        return int(self.backlog_ns(now_ns) // service)

    @property
    def active(self) -> bool:
        """Whether the model currently changes anything: a finite service
        rate is configured or injected backlog has not drained yet."""
        return self.service_rate_ops_per_s > 0 or self.backlog_ns() > 0

    def add_backlog(self, ns: float) -> None:
        """Inject *ns* of queued work (chaos ``OverloadBurst``): models a
        stall — a GC pause, a compaction, a neighbouring tenant's burst —
        that the admission maths then drains at the service rate."""
        now = self._clock.now_ns
        self._busy_until_ns = max(self._busy_until_ns, now) + float(ns)
        self.counters.inc("bursts_injected")

    def reset(self) -> None:
        """Forget all queued work — the process died (shutdown/restart);
        its in-memory request queue died with it."""
        self._busy_until_ns = 0.0

    # -- admission -----------------------------------------------------------------

    def admit(self, now_ns: float, deadline_ns: float | None = None) -> Admission:
        """Decide one arrival at *now_ns* with *deadline_ns* budget left.

        Admission pushes the busy-until watermark out by one service time
        and returns the queueing delay the caller must charge; shed
        requests leave the watermark untouched (rejection costs nothing —
        that is what makes shedding stabilising rather than amplifying).
        """
        service = self.service_time_ns
        backlog = max(0.0, self._busy_until_ns - now_ns)
        if service <= 0 and backlog <= 0:
            # Inactive: infinite capacity, nothing queued. Zero-cost path.
            return Admission(admitted=True)
        queue_len = int(backlog // service) if service > 0 else 0
        self.queue_samples.add(queue_len)
        if self.queue_depth > 0 and queue_len >= self.queue_depth:
            self.counters.inc("shed_queue_full")
            return Admission(
                admitted=False,
                queue_len=queue_len,
                reason="queue-full",
                detail=(
                    f"server {self._name or '?'} overloaded: request queue "
                    f"full ({queue_len}/{self.queue_depth})"
                ),
            )
        # FIFO waits out the whole backlog; LIFO-under-pressure lets the
        # fresh arrival jump the queue (it waits at most the request in
        # service) while the backlog still grows by its service time.
        wait = backlog if self.queue_discipline == "fifo" else min(backlog, service)
        if self.shed_expired and deadline_ns is not None:
            if deadline_ns <= 0:
                self.counters.inc("shed_expired")
                return Admission(
                    admitted=False,
                    queue_len=queue_len,
                    reason="expired",
                    detail=(
                        f"server {self._name or '?'} shed expired work: "
                        "deadline budget already spent on arrival"
                    ),
                )
            if wait + service > deadline_ns:
                self.counters.inc("shed_expired")
                return Admission(
                    admitted=False,
                    queue_len=queue_len,
                    reason="wont-finish",
                    detail=(
                        f"server {self._name or '?'} shed doomed work: "
                        f"{(wait + service) / 1e6:.3f} ms queue+service "
                        f"exceeds the {deadline_ns / 1e6:.3f} ms budget left"
                    ),
                )
        self._busy_until_ns = max(self._busy_until_ns, now_ns) + service
        self.counters.inc("admitted")
        if wait > 0:
            self.counters.inc("queued_ns", int(wait))
        return Admission(admitted=True, delay_ns=wait, queue_len=queue_len)

    # -- observability -------------------------------------------------------------

    def attach_metrics(self, registry, **labels) -> None:
        """Bind shed/admit counters and a live queue-depth gauge."""
        if not getattr(registry, "enabled", True):
            return
        registry.register_group(self.counters, "rpc_overload", **labels)
        labelnames = tuple(sorted(labels))
        registry.gauge(
            "rpc_overload_queue_depth",
            "Requests currently waiting in the server's bounded queue.",
            labels=labelnames,
        ).labels(**labels).set_function(lambda: float(self.queue_len()))
        registry.gauge(
            "rpc_overload_backlog_ns",
            "Simulated ns of admitted work not yet serviced.",
            labels=labelnames,
        ).labels(**labels).set_function(lambda: self.backlog_ns())


class RetryBudget:
    """Token bucket on simulated time gating a channel's retries.

    Each retry spends one token; tokens refill at ``rate_per_s`` up to
    ``burst``. Rate 0 disables the gate entirely (every retry allowed),
    which is the default so existing behaviour is untouched.
    """

    def __init__(self, clock, rate_per_s: float, burst: int):
        self._clock = clock
        self._rate = float(rate_per_s)
        self._burst = float(max(1, burst))
        self._tokens = self._burst
        self._last_ns = clock.now_ns

    @property
    def enabled(self) -> bool:
        return self._rate > 0

    def tokens(self) -> float:
        """Current token count (after refill), for tests and gauges."""
        self._refill()
        return self._tokens

    def _refill(self) -> None:
        now = self._clock.now_ns
        if now > self._last_ns:
            self._tokens = min(
                self._burst,
                self._tokens + (now - self._last_ns) / NS_PER_S * self._rate,
            )
        self._last_ns = now

    def try_spend(self) -> bool:
        """Take one token; False means the budget is dry — fail fast."""
        if not self.enabled:
            return True
        self._refill()
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False


class DeadlineBudget:
    """The remaining deadline of one logical multi-hop operation.

    Started when the operation begins, it answers "how much of the
    caller's patience is left" at each subsequent hop, so forwarded calls
    (ring-routed creates, migration pulls) inherit the shrunken budget
    instead of restarting a full per-call deadline per hop.
    """

    def __init__(self, clock, total_ns: float):
        self._clock = clock
        self._total = float(total_ns) if total_ns and total_ns > 0 else 0.0
        self._start_ns = clock.now_ns

    @classmethod
    def for_stub(cls, stub, clock) -> "DeadlineBudget":
        """Budget sized from the stub's channel default deadline; disabled
        (no deadline anywhere) for transports without one (e.g. dmsg)."""
        channel = getattr(stub, "channel", None)
        total = getattr(channel, "default_deadline_ns", 0.0) if channel else 0.0
        return cls(clock, total)

    @property
    def enabled(self) -> bool:
        return self._total > 0

    def remaining_ns(self) -> float:
        """Budget left right now (can reach 0, never negative)."""
        if not self._total:
            return 0.0
        return max(0.0, self._total - (self._clock.now_ns - self._start_ns))

    def kwargs(self) -> dict:
        """``{'deadline_ns': remaining}`` when enabled, else ``{}`` — the
        shape stub calls splat so deadline-less transports keep their
        plain signature. A spent budget is clamped to 1 ns rather than 0:
        the channel treats a non-positive deadline as *unset*, and a spent
        budget must fail fast, not wait forever."""
        if not self.enabled:
            return {}
        return {"deadline_ns": max(1.0, self.remaining_ns())}
