"""The server side of the RPC layer.

The paper runs a dedicated gRPC server thread per store; concurrency with
the store's main thread is guarded by a mutex on the object table. Here the
server is an in-simulation object whose :meth:`dispatch` is invoked by
client channels; handlers acquire the same real :class:`threading.Lock`
instances the store uses, so the thread-safety design is exercised for real
in the threaded integration tests.
"""

from __future__ import annotations

import traceback

from repro.common.errors import (
    ObjectCorruptedError,
    ObjectExistsError,
    ObjectNotFoundError,
    ObjectNotSealedError,
    ReproError,
    RpcError,
)
from repro.obs.metrics import CounterGroup
from repro.rpc.codec import decode_message, encode_message
from repro.rpc.service import Service
from repro.rpc.status import StatusCode

_EXCEPTION_STATUS = (
    (ObjectCorruptedError, StatusCode.DATA_LOSS),
    (ObjectNotFoundError, StatusCode.NOT_FOUND),
    (ObjectExistsError, StatusCode.ALREADY_EXISTS),
    (ObjectNotSealedError, StatusCode.FAILED_PRECONDITION),
    (ValueError, StatusCode.INVALID_ARGUMENT),
)


class RpcServer:
    """A service registry + dispatcher bound to one host."""

    def __init__(self, host: str):
        self._host = host
        self._services: dict[str, dict[str, object]] = {}
        self._shutdown = False
        self.counters = CounterGroup()
        # Opt-in observability, set by the cluster builder: a tracer and a
        # span sink plus clock for server-side dispatch spans, and a
        # pre-bound latency histogram. All default off; dispatch keeps a
        # fast path.
        self.tracer = None
        self.spans = None
        self.clock = None
        self._latency = None
        # Opt-in admission control (repro.rpc.overload), set by the cluster
        # builder. None (or an inactive model) keeps the legacy
        # infinite-capacity dispatch.
        self.overload = None

    def attach_metrics(self, registry) -> None:
        """Bind dispatch counters and per-method handler latency."""
        if not getattr(registry, "enabled", True):
            return
        registry.register_group(self.counters, "rpc_server")
        self._latency = registry.histogram(
            "rpc_server_latency_ns",
            "Simulated server-side handler time per method.",
            labels=("method",),
        )
        if self.overload is not None:
            self.overload.attach_metrics(registry)

    @property
    def host(self) -> str:
        return self._host

    @property
    def is_shutdown(self) -> bool:
        return self._shutdown

    def shutdown(self) -> None:
        """Simulate the store process dying: every subsequent call gets
        UNAVAILABLE. Note the asymmetry that makes disaggregation
        interesting: the node's exposed *memory* remains readable over the
        fabric — only the metadata plane is gone."""
        self._shutdown = True
        if self.overload is not None:
            # The in-memory request queue dies with the process.
            self.overload.reset()

    def restart(self) -> None:
        self._shutdown = False
        if self.overload is not None:
            self.overload.reset()

    def add_service(self, service: Service) -> None:
        name = service.service_name()
        if name in self._services:
            raise RpcError(f"service {name!r} already registered on {self._host}")
        methods = service.rpc_methods()
        if not methods:
            raise RpcError(f"service {name!r} exposes no @rpc_method handlers")
        self._services[name] = methods

    def replace_service(self, service: Service) -> None:
        """Swap a registered service for a fresh instance — the restart
        path: a recovered store process re-binds its service on the same
        endpoint while peers keep their existing channels."""
        name = service.service_name()
        if name not in self._services:
            raise RpcError(f"service {name!r} not registered on {self._host}")
        methods = service.rpc_methods()
        if not methods:
            raise RpcError(f"service {name!r} exposes no @rpc_method handlers")
        self._services[name] = methods

    def service_names(self) -> list[str]:
        return sorted(self._services)

    def dispatch_wire(
        self,
        service: str,
        method: str,
        request_wire: bytes,
        correlation_id: str | None = None,
        deadline_ns: float | None = None,
    ) -> tuple[StatusCode, bytes, str]:
        """Decode, dispatch, encode. Returns (status, response_wire, detail).

        This is the seam channels call: request and response both cross it
        as real serialized bytes. ``correlation_id`` models gRPC call
        metadata — the caller's request id rides alongside the payload so
        server-side spans correlate with the originating client operation —
        and ``deadline_ns`` models the ``grpc-timeout`` metadata header:
        the caller's *remaining* budget, which admission control uses to
        shed already-expired or can't-possibly-finish work before parsing
        or servicing it.
        """
        if (
            self.overload is not None
            and not self._shutdown
            and self.clock is not None
        ):
            decision = self.overload.admit(self.clock.now_ns, deadline_ns)
            if not decision.admitted:
                self.counters.inc("calls_shed")
                if self.spans is not None:
                    # Zero-duration marker: the shed is visible in the
                    # flight recorder next to the queue state it saw.
                    with self.spans.span(
                        "queue",
                        "shed",
                        node=self._host,
                        reason=decision.reason,
                        queue_len=decision.queue_len,
                    ):
                        pass
                return StatusCode.RESOURCE_EXHAUSTED, b"", decision.detail
            if decision.delay_ns > 0:
                # Queueing delay: the request sat in the bounded queue
                # before its handler ran. Charged here so it lands inside
                # the client's observed call latency.
                if self.spans is not None:
                    with self.spans.span(
                        "queue",
                        "wait",
                        node=self._host,
                        queue_len=decision.queue_len,
                    ):
                        self.clock.advance(decision.delay_ns)
                else:
                    self.clock.advance(decision.delay_ns)
        try:
            request = decode_message(request_wire)
        except RpcError as exc:
            return StatusCode.INVALID_ARGUMENT, b"", str(exc)
        if self.tracer is None and self.spans is None and self._latency is None:
            status, response, detail = self.dispatch(service, method, request)
        else:
            status, response, detail = self._dispatch_observed(
                service, method, request, correlation_id
            )
        try:
            wire = encode_message(response) if response is not None else encode_message({})
        except RpcError as exc:  # handler returned something unserialisable
            return StatusCode.INTERNAL, b"", f"unserialisable response: {exc}"
        return status, wire, detail

    def _dispatch_observed(
        self,
        service: str,
        method: str,
        request: dict,
        correlation_id: str | None,
    ) -> tuple[StatusCode, dict | None, str]:
        """Dispatch wrapped in a server-side span and handler-latency
        observation. Lives outside :meth:`dispatch` so subclasses and test
        fakes overriding ``dispatch`` keep the plain 3-argument seam."""
        start_ns = self.clock.now_ns if self.clock is not None else 0
        args = {}
        if correlation_id is not None:
            args["rid"] = correlation_id
        exemplar = None
        try:
            if self.spans is not None:
                with self.spans.span(
                    "rpc.server", f"{service}.{method}", node=self._host, **args
                ) as sp:
                    exemplar = sp.span_id
                    return self._dispatch_traced(service, method, request, args)
            return self._dispatch_traced(service, method, request, args)
        finally:
            if self._latency is not None and self.clock is not None:
                self._latency.labels(method=f"{service}.{method}").observe(
                    self.clock.now_ns - start_ns, exemplar=exemplar
                )

    def _dispatch_traced(
        self, service: str, method: str, request: dict, args: dict
    ) -> tuple[StatusCode, dict | None, str]:
        if self.tracer is not None:
            with self.tracer.span(
                "rpc.server", f"{service}.{method}", track=self._host, **args
            ):
                return self.dispatch(service, method, request)
        return self.dispatch(service, method, request)

    def dispatch(self, service: str, method: str, request: dict) -> tuple[StatusCode, dict | None, str]:
        """Dispatch a decoded request; maps handler exceptions to statuses."""
        self.counters.inc("calls")
        if self._shutdown:
            self.counters.inc("calls_unavailable")
            return (
                StatusCode.UNAVAILABLE,
                None,
                f"store process on {self._host} is down",
            )
        methods = self._services.get(service)
        if methods is None:
            self.counters.inc("calls_unimplemented")
            return StatusCode.UNIMPLEMENTED, None, f"unknown service {service!r}"
        handler = methods.get(method)
        if handler is None:
            self.counters.inc("calls_unimplemented")
            return (
                StatusCode.UNIMPLEMENTED,
                None,
                f"service {service!r} has no method {method!r}",
            )
        try:
            response = handler(request)
        except Exception as exc:  # noqa: BLE001 — the server must not die
            self.counters.inc("calls_failed")
            for exc_type, code in _EXCEPTION_STATUS:
                if isinstance(exc, exc_type):
                    return code, None, str(exc)
            if isinstance(exc, ReproError):
                return StatusCode.INTERNAL, None, str(exc)
            return (
                StatusCode.INTERNAL,
                None,
                f"unhandled {type(exc).__name__}: {exc}\n{traceback.format_exc(limit=3)}",
            )
        if response is None:
            response = {}
        if not isinstance(response, dict):
            self.counters.inc("calls_failed")
            return StatusCode.INTERNAL, None, "handler returned a non-dict response"
        self.counters.inc("calls_ok")
        return StatusCode.OK, response, ""
