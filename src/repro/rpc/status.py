"""RPC status codes (the subset of gRPC's codes the framework uses)."""

from __future__ import annotations

import enum


class StatusCode(enum.Enum):
    OK = 0
    INVALID_ARGUMENT = 3
    DEADLINE_EXCEEDED = 4
    NOT_FOUND = 5
    ALREADY_EXISTS = 6
    RESOURCE_EXHAUSTED = 8
    FAILED_PRECONDITION = 9
    UNIMPLEMENTED = 12
    INTERNAL = 13
    UNAVAILABLE = 14
    DATA_LOSS = 15

    def __str__(self) -> str:  # keep error text readable
        return self.name
