"""A gRPC-like synchronous unary RPC layer.

The paper interconnects Plasma stores with gRPC 1.38 "configured in
synchronous mode due to its favorable servicing latency ... and in unary
mode to minimize protocol overhead" (§IV-A2). This package reproduces that
stack's observable behaviour:

* :mod:`repro.rpc.codec` — a tag-length-value wire format standing in for
  Protocol Buffers: every call really serialises its request/response, so
  message sizes are real and feed the cost model.
* :class:`RpcServer` — the server side: a service registry plus a dispatch
  loop that maps handler exceptions to status codes (the paper's dedicated
  gRPC server thread is modelled by running dispatch under the store's
  object-table mutex).
* :class:`Channel` / stubs — the client side: blocking unary calls that
  charge the calibrated round-trip + per-byte cost and raise
  :class:`~repro.common.errors.RpcStatusError` on non-OK status.
"""

from repro.rpc.codec import encode_message, decode_message, MessageError
from repro.rpc.status import StatusCode
from repro.rpc.service import Service, rpc_method
from repro.rpc.server import RpcServer
from repro.rpc.channel import Channel, ServiceStub
from repro.rpc.aio import (
    AsyncChannel,
    CoalescingBuffer,
    EventLoop,
    EventLoopError,
    Future,
    Sleep,
    Task,
    TaskAttribution,
)

__all__ = [
    "AsyncChannel",
    "CoalescingBuffer",
    "EventLoop",
    "EventLoopError",
    "Future",
    "Sleep",
    "Task",
    "TaskAttribution",
    "encode_message",
    "decode_message",
    "MessageError",
    "StatusCode",
    "Service",
    "rpc_method",
    "RpcServer",
    "Channel",
    "ServiceStub",
]
