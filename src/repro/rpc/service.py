"""Service definitions.

A service is a class with ``@rpc_method``-decorated handlers; each handler
takes a request dict and returns a response dict. The decorator is the
moral equivalent of a ``.proto`` service definition: the server derives its
dispatch table from it and stubs derive their method surface.
"""

from __future__ import annotations

from typing import Callable

_RPC_ATTR = "__rpc_method__"


def rpc_method(fn: Callable) -> Callable:
    """Mark *fn* as an RPC handler exposed by its service."""
    setattr(fn, _RPC_ATTR, True)
    return fn


class Service:
    """Base class for RPC services.

    Subclasses set ``SERVICE_NAME`` and decorate handlers with
    :func:`rpc_method`. Handlers receive ``(request: dict)`` and return a
    response dict; raising a framework exception is translated to a status
    code by the server.
    """

    SERVICE_NAME: str = ""

    @classmethod
    def service_name(cls) -> str:
        return cls.SERVICE_NAME or cls.__name__

    def rpc_methods(self) -> dict[str, Callable]:
        """Name -> bound handler for every decorated method."""
        out: dict[str, Callable] = {}
        for name in dir(self):
            if name.startswith("_"):
                continue
            member = getattr(self, name)
            if callable(member) and getattr(member, _RPC_ATTR, False):
                out[name] = member
        return out
