"""The client side of the RPC layer: channels and stubs.

A :class:`Channel` connects one host to one remote :class:`RpcServer` and
performs blocking unary calls, exactly the configuration the paper uses
("synchronous mode due to its favorable servicing latency ... unary mode to
minimize protocol overhead"). Each call:

1. encodes the request through the wire codec (real bytes),
2. advances the simulated clock by the calibrated round-trip + per-byte
   marshalling cost with log-normal jitter (the paper attributes its remote
   latency variance to "gRPC and its inherent network jitter"),
3. dispatches on the server and decodes the response,
4. raises :class:`~repro.common.errors.RpcStatusError` on non-OK status.
"""

from __future__ import annotations

from repro.common.clock import SimClock
from repro.common.config import RpcConfig
from repro.common.errors import RpcError, RpcStatusError
from repro.common.rng import DeterministicRng
from repro.common.stats import Counter
from repro.rpc.codec import decode_message, encode_message
from repro.rpc.server import RpcServer
from repro.rpc.status import StatusCode


class Channel:
    """A blocking unary-call channel from *local_host* to a server."""

    def __init__(
        self,
        local_host: str,
        server: RpcServer,
        clock: SimClock,
        config: RpcConfig,
        rng: DeterministicRng,
        tracer=None,
    ):
        self._local_host = local_host
        self._server = server
        self._clock = clock
        self._config = config
        self._rng = rng.spawn("rpc", local_host, server.host)
        self._tracer = tracer
        self.counters = Counter()
        self._closed = False

    @property
    def target(self) -> str:
        return self._server.host

    @property
    def local_host(self) -> str:
        return self._local_host

    def close(self) -> None:
        self._closed = True

    def _charge(self, request_bytes: int, response_bytes: int) -> None:
        cost = (
            self._config.round_trip_ns
            + (request_bytes + response_bytes) * self._config.per_byte_ns
        ) * self._rng.lognormal_jitter(self._config.jitter_sigma)
        self._clock.advance(cost)

    def _attempt_fails(self) -> bool:
        rate = self._config.inject_failure_rate
        return rate > 0.0 and self._rng.uniform(0.0, 1.0) < rate

    def unary_call(self, service: str, method: str, request: dict | None = None) -> dict:
        """Perform one synchronous unary call; returns the response dict.

        Transient (injected) UNAVAILABLE faults are retried up to the
        configured ``max_retries``; every attempt is charged in full.
        """
        if self._closed:
            raise RpcError(f"channel to {self._server.host} is closed")
        if self._tracer is not None:
            with self._tracer.span(
                "rpc",
                f"{service}.{method}",
                track=f"{self._local_host}->{self._server.host}",
            ):
                return self._unary_call_inner(service, method, request)
        return self._unary_call_inner(service, method, request)

    def _unary_call_inner(
        self, service: str, method: str, request: dict | None
    ) -> dict:
        wire_request = encode_message(request or {})
        attempts = 1 + max(0, self._config.max_retries)
        for attempt in range(attempts):
            if self._attempt_fails():
                # The connection dropped mid-call: charge the round trip,
                # then retry or surface UNAVAILABLE.
                self._charge(len(wire_request), 0)
                self.counters.inc("attempts_failed")
                if attempt == attempts - 1:
                    self.counters.inc("calls_failed")
                    raise RpcStatusError(
                        StatusCode.UNAVAILABLE,
                        f"connection to {self._server.host} lost "
                        f"({attempts} attempts)",
                    )
                self.counters.inc("retries")
                continue
            status, wire_response, detail = self._server.dispatch_wire(
                service, method, wire_request
            )
            self._charge(len(wire_request), len(wire_response))
            self.counters.inc("calls")
            self.counters.inc("bytes_sent", len(wire_request))
            self.counters.inc("bytes_received", len(wire_response))
            if status is not StatusCode.OK:
                self.counters.inc("calls_failed")
                raise RpcStatusError(status, detail)
            return decode_message(wire_response)
        raise AssertionError("unreachable")  # pragma: no cover

    def stream_call(
        self, service: str, method: str, requests: list[dict]
    ) -> list[dict]:
        """A bidirectional-streaming call: many request messages, one
        connection round trip.

        The paper configures gRPC "in unary mode to minimize protocol
        overhead for the messages being sent"; streaming instead pays the
        round trip once plus a per-message framing cost, which wins when a
        caller has many small requests that cannot be batched into one
        message. Each message is dispatched to the same handler a unary
        call would hit; the first non-OK status aborts the stream (gRPC
        semantics) and raises.
        """
        if self._closed:
            raise RpcError(f"channel to {self._server.host} is closed")
        if not requests:
            return []
        responses: list[dict] = []
        wire_in = 0
        wire_out = 0
        for request in requests:
            wire_request = encode_message(request)
            status, wire_response, detail = self._server.dispatch_wire(
                service, method, wire_request
            )
            wire_in += len(wire_request)
            wire_out += len(wire_response)
            if status is not StatusCode.OK:
                self._charge_stream(len(requests), wire_in, wire_out)
                self.counters.inc("calls_failed")
                raise RpcStatusError(status, detail)
            responses.append(decode_message(wire_response))
        self._charge_stream(len(requests), wire_in, wire_out)
        self.counters.inc("calls")
        self.counters.inc("stream_messages", len(requests))
        self.counters.inc("bytes_sent", wire_in)
        self.counters.inc("bytes_received", wire_out)
        return responses

    def _charge_stream(self, nmessages: int, bytes_in: int, bytes_out: int) -> None:
        cost = (
            self._config.round_trip_ns
            + nmessages * self._config.per_stream_message_ns
            + (bytes_in + bytes_out) * self._config.per_byte_ns
        ) * self._rng.lognormal_jitter(self._config.jitter_sigma)
        self._clock.advance(cost)

    def stub(self, service: str) -> "ServiceStub":
        return ServiceStub(self, service)


class ServiceStub:
    """Dynamic per-service stub: ``stub.Lookup({...})`` == unary call.

    Mirrors how generated gRPC stubs expose one attribute per method.
    """

    def __init__(self, channel: Channel, service: str):
        self._channel = channel
        self._service = service

    @property
    def service(self) -> str:
        return self._service

    def __getattr__(self, method: str):
        if method.startswith("_"):
            raise AttributeError(method)

        def call(request: dict | None = None) -> dict:
            return self._channel.unary_call(self._service, method, request)

        call.__name__ = method
        return call
