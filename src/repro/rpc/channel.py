"""The client side of the RPC layer: channels and stubs.

A :class:`Channel` connects one host to one remote :class:`RpcServer` and
performs blocking unary calls, exactly the configuration the paper uses
("synchronous mode due to its favorable servicing latency ... unary mode to
minimize protocol overhead"). Each call:

1. encodes the request through the wire codec (real bytes),
2. advances the simulated clock by the calibrated round-trip + per-byte
   marshalling cost with log-normal jitter (the paper attributes its remote
   latency variance to "gRPC and its inherent network jitter"),
3. dispatches on the server and decodes the response,
4. raises :class:`~repro.common.errors.RpcStatusError` on non-OK status.

Resilience semantics (gRPC-shaped, used by repro.core.health / repro.chaos):

* **Retries with exponential backoff** — UNAVAILABLE outcomes (injected
  connection drops, chaos blackholes/partitions, a dead server process)
  are retried up to ``max_retries`` times; every attempt is charged in
  full and each backoff interval (initial x multiplier^n, capped,
  jittered) is charged to the waiting caller.
* **Deadlines** — ``deadline_ns`` (per call, or ``default_deadline_ns``
  from config) bounds the whole call including retries and backoff: the
  clock is only ever advanced up to the deadline, then the call raises
  DEADLINE_EXCEEDED. Without a deadline, a blackholed attempt still waits
  only the chaos runtime's connect timeout per attempt, so nothing hangs
  forever.
* **Circuit breaker** — an optional per-channel breaker is consulted
  before every call; while open, calls fail fast (~1 us) without a round
  trip, and the call's final outcome (success / unavailable / deadline)
  feeds back into the breaker state.
"""

from __future__ import annotations

from repro.common.clock import SimClock
from repro.common.config import RpcConfig
from repro.common.errors import RpcError, RpcStatusError, ServerOverloadedError
from repro.common.rng import DeterministicRng
from repro.common.stats import Distribution
from repro.obs.metrics import CounterGroup
from repro.rpc.codec import decode_message, encode_message
from repro.rpc.overload import RetryBudget
from repro.rpc.server import RpcServer
from repro.rpc.status import StatusCode

# Outcomes that count against the circuit breaker: the peer is down,
# unreachable, or shedding load. RESOURCE_EXHAUSTED is deliberately in the
# list — a breaker that opens under sustained shedding stops the caller
# hammering a saturated peer, which is the backpressure the server's
# bounded queue is asking for.
_FAILURE_CODES = (
    StatusCode.UNAVAILABLE,
    StatusCode.DEADLINE_EXCEEDED,
    StatusCode.RESOURCE_EXHAUSTED,
)


class Channel:
    """A blocking unary-call channel from *local_host* to a server."""

    def __init__(
        self,
        local_host: str,
        server: RpcServer,
        clock: SimClock,
        config: RpcConfig,
        rng: DeterministicRng,
        tracer=None,
        *,
        spans=None,
        breaker=None,
        chaos=None,
        correlation=None,
    ):
        self._local_host = local_host
        self._server = server
        self._clock = clock
        self._config = config
        self._rng = rng.spawn("rpc", local_host, server.host)
        self._tracer = tracer
        self._spans = spans
        self._breaker = breaker
        self._chaos = chaos
        self._correlation = correlation
        self.counters = CounterGroup()
        self._latency = None  # per-(peer, method) histogram family
        self._closed = False
        # Retry amplification cap: a token bucket on simulated time shared
        # by every call on this channel. Rate 0 (default) disables the gate.
        self._retry_budget = RetryBudget(
            clock, config.retry_budget_per_s, config.retry_budget_burst
        )
        # Client-observed latency samples feeding the hedged-read delay
        # quantile. Only collected when hedging is configured, so the
        # default path allocates nothing per call.
        self._latency_samples = Distribution()

    def attach_metrics(self, registry) -> None:
        """Bind call counters, per-method latency, and breaker state."""
        if not getattr(registry, "enabled", True):
            return
        registry.register_group(
            self.counters, "rpc_client", peer=self._server.host
        )
        self._latency = registry.histogram(
            "rpc_client_latency_ns",
            "Simulated client-observed RPC latency incl. retries/backoff.",
            labels=("peer", "method"),
        )
        if self._breaker is not None:
            self._breaker.attach_metrics(registry, peer=self._server.host)

    @property
    def target(self) -> str:
        return self._server.host

    @property
    def local_host(self) -> str:
        return self._local_host

    @property
    def breaker(self):
        return self._breaker

    @property
    def retry_budget(self) -> RetryBudget:
        return self._retry_budget

    @property
    def default_deadline_ns(self) -> float:
        """The configured per-call deadline (0 = none) — the budget a
        multi-hop operation starts from (see DeadlineBudget.for_stub)."""
        return self._config.default_deadline_ns

    def hedge_delay_ns(self) -> float | None:
        """How long to wait on a read before hedging to another holder:
        the configured quantile of this channel's observed call latency.
        None until hedging is configured and enough samples exist."""
        q = self._config.hedge_quantile
        if q <= 0 or self._latency_samples.count < self._config.hedge_min_samples:
            return None
        return float(self._latency_samples.quantile(q))

    def close(self) -> None:
        self._closed = True

    # -- cost accounting -----------------------------------------------------------

    def _cost_ns(self, request_bytes: int, response_bytes: int) -> float:
        return (
            self._config.round_trip_ns
            + (request_bytes + response_bytes) * self._config.per_byte_ns
        ) * self._rng.lognormal_jitter(self._config.jitter_sigma)

    def _advance_within_deadline(
        self, cost_ns: float, start_ns: int, deadline_ns: float | None
    ) -> None:
        """Advance the clock by *cost_ns*, but never past the call deadline;
        on expiry, charge only the remainder and raise DEADLINE_EXCEEDED."""
        if deadline_ns is None:
            self._clock.advance(cost_ns)
            return
        remaining = deadline_ns - (self._clock.now_ns - start_ns)
        if cost_ns > remaining:
            self._clock.advance(max(0.0, remaining))
            self.counters.inc("deadline_exceeded")
            self.counters.inc("calls_failed")
            raise RpcStatusError(
                StatusCode.DEADLINE_EXCEEDED,
                f"deadline of {deadline_ns / 1e6:.3f} ms exceeded calling "
                f"{self._server.host}",
            )
        self._clock.advance(cost_ns)

    def _backoff_ns(self, retry_index: int) -> float:
        base = self._config.retry_initial_backoff_ns * (
            self._config.retry_backoff_multiplier**retry_index
        )
        base = min(base, self._config.retry_max_backoff_ns)
        return base * self._rng.lognormal_jitter(
            self._config.retry_backoff_jitter_sigma
        )

    def _attempt_fails(self) -> bool:
        rate = self._config.inject_failure_rate
        return rate > 0.0 and self._rng.uniform(0.0, 1.0) < rate

    def _transport_silent(self) -> bool:
        """True while a chaos partition/blackhole swallows our attempts."""
        if self._chaos is None:
            return False
        self._chaos.poll()
        return not self._chaos.rpc_allowed(self._local_host, self._server.host)

    def _effective_deadline(self, deadline_ns: float | None) -> float | None:
        if deadline_ns is not None:
            return deadline_ns if deadline_ns > 0 else None
        configured = self._config.default_deadline_ns
        return configured if configured > 0 else None

    # -- breaker gate ---------------------------------------------------------------

    def _breaker_admit(self) -> None:
        if self._breaker is None:
            return
        if not self._breaker.allow():
            self._clock.advance(self._breaker.fail_fast_cost_ns)
            self.counters.inc("breaker_rejections")
            raise RpcStatusError(
                StatusCode.UNAVAILABLE,
                f"circuit breaker open for {self._server.host}",
            )

    def _breaker_record(self, exc: RpcStatusError | None) -> None:
        if self._breaker is None:
            return
        if exc is not None and exc.code in _FAILURE_CODES:
            self._breaker.record_failure()
        else:
            # Any definitive response — OK or an application-level status —
            # proves the peer is alive.
            self._breaker.record_success()

    # -- unary ------------------------------------------------------------------------

    def unary_call(
        self,
        service: str,
        method: str,
        request: dict | None = None,
        *,
        deadline_ns: float | None = None,
    ) -> dict:
        """Perform one synchronous unary call; returns the response dict.

        Transient UNAVAILABLE outcomes are retried with exponential backoff
        up to the configured ``max_retries``; every attempt and backoff is
        charged in simulated time, bounded by the call deadline.
        """
        if self._closed:
            raise RpcError(f"channel to {self._server.host} is closed")
        self._breaker_admit()
        deadline = self._effective_deadline(deadline_ns)
        track = self._latency is not None or self._config.hedge_quantile > 0
        start_ns = self._clock.now_ns if track else 0
        try:
            if self._spans is not None:
                with self._spans.span(
                    "rpc",
                    f"{service}.{method}",
                    node=f"{self._local_host}->{self._server.host}",
                    **self._span_args(),
                ):
                    response = self._unary_call_traced(
                        service, method, request, deadline
                    )
            else:
                response = self._unary_call_traced(
                    service, method, request, deadline
                )
        except RpcStatusError as exc:
            self._observe_latency(method, start_ns)
            self._breaker_record(exc)
            raise
        self._observe_latency(method, start_ns)
        if self._config.hedge_quantile > 0:
            # Successful-call latency feeds the hedge-delay quantile.
            self._latency_samples.add(self._clock.now_ns - start_ns)
        self._breaker_record(None)
        return response

    def _span_args(self) -> dict:
        rid = self._correlation.current if self._correlation is not None else None
        return {} if rid is None else {"rid": rid}

    def _unary_call_traced(
        self,
        service: str,
        method: str,
        request: dict | None,
        deadline_ns: float | None,
    ) -> dict:
        """The legacy-tracer wrapper layer, kept separate so the span-sink
        and tracer instrumentation nest without duplicating the call."""
        if self._tracer is not None:
            with self._tracer.span(
                "rpc",
                f"{service}.{method}",
                track=f"{self._local_host}->{self._server.host}",
                **self._span_args(),
            ):
                return self._unary_call_inner(service, method, request, deadline_ns)
        return self._unary_call_inner(service, method, request, deadline_ns)

    def _charge_retry(
        self, cost_ns: float, start_ns: int, deadline_ns: float | None
    ) -> None:
        """Charge *cost_ns* attributed to the retry component: backoff
        intervals and the transport cost of repeat attempts are retry
        amplification, not useful service time."""
        if self._spans is not None:
            with self._spans.component("retry"):
                self._advance_within_deadline(cost_ns, start_ns, deadline_ns)
        else:
            self._advance_within_deadline(cost_ns, start_ns, deadline_ns)

    def _observe_latency(self, method: str, start_ns: int) -> None:
        if self._latency is not None:
            self._latency.labels(peer=self._server.host, method=method).observe(
                self._clock.now_ns - start_ns,
                exemplar=(
                    self._spans.current_span_id
                    if self._spans is not None
                    else None
                ),
            )

    def _unary_call_inner(
        self,
        service: str,
        method: str,
        request: dict | None,
        deadline_ns: float | None,
    ) -> dict:
        wire_request = encode_message(request or {})
        attempts = 1 + max(0, self._config.max_retries)
        start_ns = self._clock.now_ns
        for attempt in range(attempts):
            last = attempt == attempts - 1
            if self._transport_silent():
                # The attempt vanished into a partition/blackhole: the
                # caller waits out its connect timeout (or the deadline).
                self._fail_attempt(
                    self._chaos.unanswered_wait_ns,
                    start_ns,
                    deadline_ns,
                    last,
                    attempts,
                    attempt,
                    f"no response from {self._server.host}",
                )
                continue
            if self._attempt_fails():
                # The connection dropped mid-call: charge the round trip,
                # then retry or surface UNAVAILABLE.
                self._fail_attempt(
                    self._cost_ns(len(wire_request), 0),
                    start_ns,
                    deadline_ns,
                    last,
                    attempts,
                    attempt,
                    f"connection to {self._server.host} lost",
                )
                continue
            status, wire_response, detail = self._server.dispatch_wire(
                service,
                method,
                wire_request,
                correlation_id=(
                    self._correlation.current
                    if self._correlation is not None
                    else None
                ),
                # The grpc-timeout header: the budget *left*, not the
                # original deadline, so a forwarded/retried call tells the
                # server how much patience actually remains.
                deadline_ns=(
                    deadline_ns - (self._clock.now_ns - start_ns)
                    if deadline_ns is not None
                    else None
                ),
            )
            self._advance_within_deadline(
                self._cost_ns(len(wire_request), len(wire_response)),
                start_ns,
                deadline_ns,
            )
            self.counters.inc("calls")
            self.counters.inc("bytes_sent", len(wire_request))
            self.counters.inc("bytes_received", len(wire_response))
            if status is StatusCode.UNAVAILABLE:
                # The server process is down (connection refused). gRPC
                # treats UNAVAILABLE as retryable; so do we.
                self.counters.inc("attempts_failed")
                if last:
                    self.counters.inc("calls_failed")
                    raise RpcStatusError(status, detail)
                self._gate_retry(RpcStatusError(status, detail))
                self.counters.inc("retries")
                self._charge_retry(self._backoff_ns(attempt), start_ns, deadline_ns)
                continue
            if status is StatusCode.RESOURCE_EXHAUSTED:
                # The server shed us under overload. Retryable — the peer is
                # alive — but every retry spends retry budget, so a storm
                # of shed calls fails fast instead of amplifying the load.
                self.counters.inc("attempts_shed")
                err = ServerOverloadedError(detail)
                if last:
                    self.counters.inc("calls_failed")
                    raise err
                self._gate_retry(err)
                self.counters.inc("retries")
                self._charge_retry(self._backoff_ns(attempt), start_ns, deadline_ns)
                continue
            if status is not StatusCode.OK:
                self.counters.inc("calls_failed")
                raise RpcStatusError(status, detail)
            return decode_message(wire_response)
        raise AssertionError("unreachable")  # pragma: no cover

    def _gate_retry(self, exc: RpcStatusError) -> None:
        """Spend one retry token or fail the call fast with *exc*.

        The per-channel token bucket caps retry amplification: once the
        budget is dry, a failed attempt surfaces immediately instead of
        piling more attempts onto a peer that is already struggling.
        """
        if self._retry_budget.try_spend():
            return
        self.counters.inc("retries_suppressed")
        self.counters.inc("calls_failed")
        raise exc

    def _fail_attempt(
        self,
        cost_ns: float,
        start_ns: int,
        deadline_ns: float | None,
        last: bool,
        attempts: int,
        attempt: int,
        detail: str,
    ) -> None:
        """Account one transport-level failed attempt; retry or raise."""
        if attempt > 0:
            # A repeat attempt's wasted transport cost is retry
            # amplification; the first attempt's cost is ordinary service.
            self._charge_retry(cost_ns, start_ns, deadline_ns)
        else:
            self._advance_within_deadline(cost_ns, start_ns, deadline_ns)
        self.counters.inc("attempts_failed")
        if last:
            self.counters.inc("calls_failed")
            raise RpcStatusError(
                StatusCode.UNAVAILABLE, f"{detail} ({attempts} attempts)"
            )
        self._gate_retry(
            RpcStatusError(
                StatusCode.UNAVAILABLE, f"{detail} (retry budget exhausted)"
            )
        )
        self.counters.inc("retries")
        self._charge_retry(self._backoff_ns(attempt), start_ns, deadline_ns)

    # -- streaming ---------------------------------------------------------------------

    def stream_call(
        self,
        service: str,
        method: str,
        requests: list[dict],
        *,
        deadline_ns: float | None = None,
    ) -> list[dict]:
        """A bidirectional-streaming call: many request messages, one
        connection round trip.

        The paper configures gRPC "in unary mode to minimize protocol
        overhead for the messages being sent"; streaming instead pays the
        round trip once plus a per-message framing cost, which wins when a
        caller has many small requests that cannot be batched into one
        message. Each message is dispatched to the same handler a unary
        call would hit; the first non-OK status aborts the stream (gRPC
        semantics) and raises.

        Stream *establishment* goes through the same failure path as unary
        calls: injected connection drops and chaos blackholes/partitions
        are retried with backoff, deadlines bound the whole call, and the
        breaker gates admission — a fault plan degrades streams and unary
        calls alike.
        """
        if self._closed:
            raise RpcError(f"channel to {self._server.host} is closed")
        if not requests:
            return []
        self._breaker_admit()
        deadline = self._effective_deadline(deadline_ns)
        start_ns = self._clock.now_ns if self._latency is not None else 0
        try:
            if self._spans is not None:
                with self._spans.span(
                    "rpc",
                    f"{service}.{method}",
                    node=f"{self._local_host}->{self._server.host}",
                    **self._span_args(),
                ):
                    responses = self._stream_call_inner(
                        service, method, requests, deadline
                    )
            else:
                responses = self._stream_call_inner(
                    service, method, requests, deadline
                )
        except RpcStatusError as exc:
            self._observe_latency(method, start_ns)
            self._breaker_record(exc)
            raise
        self._observe_latency(method, start_ns)
        self._breaker_record(None)
        return responses

    def _stream_call_inner(
        self,
        service: str,
        method: str,
        requests: list[dict],
        deadline_ns: float | None,
    ) -> list[dict]:
        attempts = 1 + max(0, self._config.max_retries)
        start_ns = self._clock.now_ns
        for attempt in range(attempts):
            last = attempt == attempts - 1
            if self._transport_silent():
                self._fail_attempt(
                    self._chaos.unanswered_wait_ns,
                    start_ns,
                    deadline_ns,
                    last,
                    attempts,
                    attempt,
                    f"no response from {self._server.host}",
                )
                continue
            if self._attempt_fails():
                # The stream never established: one wasted round trip.
                self._fail_attempt(
                    self._cost_ns(0, 0),
                    start_ns,
                    deadline_ns,
                    last,
                    attempts,
                    attempt,
                    f"stream to {self._server.host} lost",
                )
                continue
            return self._stream_dispatch(
                service, method, requests, start_ns, deadline_ns
            )
        raise AssertionError("unreachable")  # pragma: no cover

    def _stream_dispatch(
        self,
        service: str,
        method: str,
        requests: list[dict],
        start_ns: int,
        deadline_ns: float | None,
    ) -> list[dict]:
        responses: list[dict] = []
        wire_in = 0
        wire_out = 0
        rid = self._correlation.current if self._correlation is not None else None
        for request in requests:
            wire_request = encode_message(request)
            status, wire_response, detail = self._server.dispatch_wire(
                service,
                method,
                wire_request,
                correlation_id=rid,
                deadline_ns=(
                    deadline_ns - (self._clock.now_ns - start_ns)
                    if deadline_ns is not None
                    else None
                ),
            )
            wire_in += len(wire_request)
            wire_out += len(wire_response)
            if status is not StatusCode.OK:
                self._advance_within_deadline(
                    self._stream_cost_ns(len(requests), wire_in, wire_out),
                    start_ns,
                    deadline_ns,
                )
                self.counters.inc("calls_failed")
                if status is StatusCode.RESOURCE_EXHAUSTED:
                    raise ServerOverloadedError(detail)
                raise RpcStatusError(status, detail)
            responses.append(decode_message(wire_response))
        self._advance_within_deadline(
            self._stream_cost_ns(len(requests), wire_in, wire_out),
            start_ns,
            deadline_ns,
        )
        self.counters.inc("calls")
        self.counters.inc("stream_messages", len(requests))
        self.counters.inc("bytes_sent", wire_in)
        self.counters.inc("bytes_received", wire_out)
        return responses

    def _stream_cost_ns(self, nmessages: int, bytes_in: int, bytes_out: int) -> float:
        return (
            self._config.round_trip_ns
            + nmessages * self._config.per_stream_message_ns
            + (bytes_in + bytes_out) * self._config.per_byte_ns
        ) * self._rng.lognormal_jitter(self._config.jitter_sigma)

    def stub(self, service: str) -> "ServiceStub":
        return ServiceStub(self, service)


class ServiceStub:
    """Dynamic per-service stub: ``stub.Lookup({...})`` == unary call.

    Mirrors how generated gRPC stubs expose one attribute per method.
    """

    def __init__(self, channel: Channel, service: str):
        self._channel = channel
        self._service = service

    @property
    def service(self) -> str:
        return self._service

    @property
    def channel(self) -> Channel:
        return self._channel

    def __getattr__(self, method: str):
        if method.startswith("_"):
            raise AttributeError(method)

        def call(
            request: dict | None = None, *, deadline_ns: float | None = None
        ) -> dict:
            if deadline_ns is None:
                # Keep the plain signature for alternate transports
                # (e.g. DmsgChannel) that predate deadlines.
                return self._channel.unary_call(self._service, method, request)
            return self._channel.unary_call(
                self._service, method, request, deadline_ns=deadline_ns
            )

        call.__name__ = method
        return call
