"""The traditional scale-out baseline (paper Fig 1a).

"In a scale-out approach, vast amounts of data are sent over the local
network and copied to local memory, contending for network bandwidth and
often harming performance by thrashing memory across the compute nodes."

This package implements exactly that: per-node Plasma stores with *no*
fabric; a remote get performs an RPC lookup, streams the whole payload over
the LAN model, and materialises a local replica (consuming local store
capacity — the thrashing the paper describes). The comparison benchmarks
(DESIGN.md E6) pit it against the disaggregated framework.
"""

from repro.baseline.scaleout import ScaleOutCluster, ScaleOutClient, ScaleOutStore

__all__ = ["ScaleOutCluster", "ScaleOutClient", "ScaleOutStore"]
