"""Scale-out object sharing: fetch-by-copy over the LAN.

Architecture: every node runs a plain (node-local) Plasma store; stores
expose a ``FetchService`` over RPC. A client request for a remote object

1. RPC-Lookups peers for the id (metadata, like the disaggregated store),
2. streams the *entire payload* over the LAN model (~1.1 GiB/s vs the
   fabric's 5.75 GiB/s),
3. writes it into the local store as a replica (a real local allocation —
   under memory pressure this evicts resident objects: the "thrashing"
   of paper §I),
4. serves the client from the local replica.

Repeated gets of the same id hit the local replica, so the baseline's
caching behaviour is honest too.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.clock import SimClock
from repro.common.config import ClusterConfig
from repro.common.errors import ObjectNotFoundError
from repro.common.ids import ObjectID, UniqueIDGenerator
from repro.common.rng import DeterministicRng
from repro.memory.host import HostMemory
from repro.network.ipc import IpcChannel
from repro.network.lan import Connection, Network
from repro.plasma.buffer import PlasmaBuffer
from repro.plasma.client import PlasmaClient
from repro.plasma.store import PlasmaStore
from repro.rpc.channel import Channel, ServiceStub
from repro.rpc.server import RpcServer
from repro.rpc.service import Service, rpc_method
from repro.thymesisflow.endpoint import ThymesisEndpoint


class FetchService(Service):
    """RPC surface of a scale-out store: metadata lookup + payload export."""

    SERVICE_NAME = "scaleout.FetchService"

    def __init__(self, store: "ScaleOutStore"):
        self._store = store

    @rpc_method
    def Lookup(self, request: dict) -> dict:
        object_ids = [ObjectID(raw) for raw in request.get("object_ids", [])]
        if not object_ids:
            raise ValueError("object_ids must be non-empty")
        found = []
        with self._store.table.lock:
            for oid in object_ids:
                descriptor = self._store.lookup_descriptor(oid)
                if descriptor is not None:
                    found.append(descriptor)
        return {"found": found, "store": self._store.name}

    @rpc_method
    def Contains(self, request: dict) -> dict:
        object_ids = [ObjectID(raw) for raw in request.get("object_ids", [])]
        with self._store.table.lock:
            return {"present": [self._store.contains(oid) for oid in object_ids]}


class ScaleOutStore(PlasmaStore):
    """A node-local store that can pull remote objects over the LAN."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._peer_stubs: dict[str, ServiceStub] = {}
        self._peer_conns: dict[str, Connection] = {}
        # Direct references to peer stores stand in for the peer's send
        # loop, which on real hardware reads its own shared memory to feed
        # the socket. All *timing* comes from the LAN model.
        self._peer_stores: dict[str, "ScaleOutStore"] = {}

    def connect_peer(
        self,
        name: str,
        stub: ServiceStub,
        conn: Connection,
        peer_store: "ScaleOutStore",
    ) -> None:
        self._peer_stubs[name] = stub
        self._peer_conns[name] = conn
        self._peer_stores[name] = peer_store

    def peers(self) -> list[str]:
        return sorted(self._peer_stubs)

    def fetch_remote(self, object_id: ObjectID) -> None:
        """Pull *object_id* from whichever peer has it and replicate it
        locally. Raises ObjectNotFoundError if nobody does."""
        for name in self.peers():
            stub = self._peer_stubs[name]
            response = stub.Lookup({"object_ids": [object_id.binary()]})
            found = response.get("found", [])
            if not found:
                continue
            descriptor = found[0]
            size = int(descriptor["data_size"])
            peer_store = self._peer_stores[name]
            src_entry = peer_store.get_sealed_entry(object_id)
            payload = peer_store.local_buffer(src_entry).view()
            # Stream the payload over the LAN (charged per byte)...
            conn = self._peer_conns[name]
            conn.send(payload)
            received = conn.peer.recv()
            # ...and materialise a local replica (a real allocation that can
            # evict resident objects — the scale-out thrashing).
            entry = self.create_object_unchecked(
                object_id, size, bytes(descriptor.get("metadata", b""))
            )
            replica = self.local_buffer(entry)
            replica.write(received)
            self.seal_object(object_id)
            self.counters.inc("remote_fetches")
            self.counters.inc("bytes_fetched", size)
            return
        raise ObjectNotFoundError(f"{object_id!r} not found on any peer")


class ScaleOutClient(PlasmaClient):
    """Client API identical to Plasma's; remote objects are pulled and
    replicated on first get."""

    def get(self, object_ids: list[ObjectID]) -> list[PlasmaBuffer]:
        if not object_ids:
            return []
        store: ScaleOutStore = self._store  # type: ignore[assignment]
        self._ipc.charge_request(nobjects=len(object_ids))
        for oid in object_ids:
            if not store.contains(oid):
                store.fetch_remote(oid)
        buffers = []
        for oid in object_ids:
            entry = store.get_sealed_entry(oid)
            store.add_ref(oid)
            buffer = store.local_buffer(entry)
            self._held.setdefault(oid, []).append(buffer)
            buffers.append(buffer)
        self.counters.inc("gets", len(object_ids))
        return buffers


@dataclass
class ScaleOutNode:
    name: str
    store: ScaleOutStore
    server: RpcServer
    ipc: IpcChannel
    channels: dict[str, Channel] = field(default_factory=dict)


class ScaleOutCluster:
    """N nodes sharing objects the traditional way (Fig 1a)."""

    def __init__(self, config: ClusterConfig | None = None, n_nodes: int = 2):
        self._config = config or ClusterConfig()
        self._config.validate()
        if n_nodes < 2:
            raise ValueError("a cluster needs >= 2 nodes")
        self._clock = SimClock()
        self._rng = DeterministicRng(self._config.seed)
        self._id_gen = UniqueIDGenerator(self._rng.spawn("object-ids"))
        self._network = Network(self._clock, self._config.lan, self._rng)
        self._nodes: dict[str, ScaleOutNode] = {}
        self._client_seq = 0

        names = [f"node{i}" for i in range(n_nodes)]
        for name in names:
            self._network.register_host(name)
            capacity = self._config.store.capacity_bytes
            memory = HostMemory(capacity, node=name)
            endpoint = ThymesisEndpoint(
                name, memory, self._clock, self._config.local_memory, self._rng
            )
            store = ScaleOutStore(
                name, endpoint, memory.whole(), self._config.store, self._clock
            )
            server = RpcServer(name)
            server.add_service(FetchService(store))
            ipc = IpcChannel(
                self._clock, self._config.ipc, self._rng.spawn("ipc", name)
            )
            self._nodes[name] = ScaleOutNode(
                name=name, store=store, server=server, ipc=ipc
            )
        for a in names:
            for b in names:
                if a == b:
                    continue
                channel = Channel(
                    a, self._nodes[b].server, self._clock, self._config.rpc, self._rng
                )
                self._nodes[a].channels[b] = channel
                conn = self._network.connect(a, b)
                self._nodes[a].store.connect_peer(
                    b,
                    channel.stub(FetchService.SERVICE_NAME),
                    conn,
                    self._nodes[b].store,
                )

    @property
    def clock(self) -> SimClock:
        return self._clock

    @property
    def config(self) -> ClusterConfig:
        return self._config

    @property
    def network(self) -> Network:
        return self._network

    def node_names(self) -> list[str]:
        return list(self._nodes)

    def store(self, name: str) -> ScaleOutStore:
        return self._nodes[name].store

    def client(self, node_name: str, client_name: str | None = None) -> ScaleOutClient:
        node = self._nodes[node_name]
        if client_name is None:
            self._client_seq += 1
            client_name = f"client{self._client_seq}@{node_name}"
        return ScaleOutClient(client_name, node.store, node.ipc)

    def new_object_id(self):
        return self._id_gen.next()

    def new_object_ids(self, n: int):
        return self._id_gen.take(n)
