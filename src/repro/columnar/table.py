"""Named-column tables: one object per column + a schema object.

Column objects get ids derived deterministically from the table id
(:func:`~repro.columnar.schema.column_object_id`), so consumers resolve a
whole table with one id. The schema object's payload lists the column names
(the TLV codec again — no ad-hoc serialization anywhere).
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ObjectStoreError
from repro.common.ids import ObjectID
from repro.columnar.array import ArrayRef, get_array, put_array
from repro.columnar.schema import column_object_id
from repro.plasma.client import PlasmaClient
from repro.rpc.codec import decode_message, encode_message

_TABLE_KIND = "table"


def put_table(
    client: PlasmaClient, table_id: ObjectID, columns: dict[str, np.ndarray]
) -> ObjectID:
    """Store a table: every column as its own typed object, plus a schema
    object under *table_id* listing the columns.

    All columns must have equal length (a table, not a bag of arrays).
    """
    if not columns:
        raise ObjectStoreError("a table needs at least one column")
    lengths = {name: len(arr) for name, arr in columns.items()}
    if len(set(lengths.values())) != 1:
        raise ObjectStoreError(f"ragged table: column lengths {lengths}")
    for name, array in columns.items():
        put_array(client, column_object_id(table_id, name), array)
    manifest = encode_message(
        {"kind": _TABLE_KIND, "columns": list(columns.keys()), "rows": len(next(iter(columns.values())))}
    )
    buffer = client.create(table_id, len(manifest), metadata=b"")
    buffer.write(manifest)
    client.seal(table_id)
    client.release(table_id)
    return table_id


class TableRef:
    """Zero-copy views of every column; releases all references at once."""

    def __init__(self, refs: dict[str, ArrayRef], rows: int):
        self._refs = refs
        self._rows = rows
        self._released = False

    @property
    def column_names(self) -> list[str]:
        return list(self._refs)

    @property
    def rows(self) -> int:
        return self._rows

    def column(self, name: str) -> np.ndarray:
        if self._released:
            raise ObjectStoreError("table reference already released")
        try:
            return self._refs[name].array
        except KeyError:
            raise ObjectStoreError(
                f"no column {name!r}; table has {self.column_names}"
            ) from None

    def __getitem__(self, name: str) -> np.ndarray:
        return self.column(name)

    def to_dict(self) -> dict[str, np.ndarray]:
        return {name: self.column(name) for name in self._refs}

    def release(self) -> None:
        if not self._released:
            self._released = True
            for ref in self._refs.values():
                ref.release()

    def __enter__(self) -> "TableRef":
        return self

    def __exit__(self, *exc) -> None:
        self.release()


def get_table(client: PlasmaClient, table_id: ObjectID) -> TableRef:
    """Resolve a table by id: read the manifest, then view every column."""
    manifest_bytes = client.get_bytes(table_id)
    manifest = decode_message(manifest_bytes)
    if manifest.get("kind") != _TABLE_KIND:
        raise ObjectStoreError(f"{table_id!r} is not a table object")
    refs: dict[str, ArrayRef] = {}
    try:
        for name in manifest["columns"]:
            refs[name] = get_array(client, column_object_id(table_id, name))
    except Exception:
        for ref in refs.values():
            ref.release()
        raise
    return TableRef(refs, rows=int(manifest["rows"]))
