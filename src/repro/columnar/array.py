"""Typed array put/get over any Plasma-API client (local or disaggregated)."""

from __future__ import annotations

import numpy as np

from repro.common.errors import ObjectStoreError
from repro.common.ids import ObjectID
from repro.columnar.schema import ArraySchema, decode_schema, encode_schema
from repro.plasma.client import PlasmaClient


def put_array(client: PlasmaClient, object_id: ObjectID, array: np.ndarray) -> ObjectID:
    """Store *array* as an immutable typed object; returns its id.

    The payload is the array's raw bytes (one timed write at memory
    bandwidth); dtype/shape/order travel in metadata. Zero-dimension arrays
    are rejected (Plasma objects cannot be empty).
    """
    schema = ArraySchema.of(array)
    if schema.nbytes == 0:
        raise ObjectStoreError("cannot store an empty array")
    buffer = client.create(object_id, schema.nbytes, metadata=encode_schema(schema))
    if array.flags.c_contiguous:
        mv = memoryview(array).cast("B")
    else:
        # F-contiguous: serialise in the array's own memory order, matching
        # the schema's order tag.
        mv = memoryview(array.tobytes(order="F"))
    buffer.write(mv)
    client.seal(object_id)
    client.release(object_id)
    return object_id


class ArrayRef:
    """A consumer's handle: a read-only typed view plus the reference it
    pins. Release (or use as a context manager) when done — that is what
    lets the store's eviction policy know the array is no longer in use.
    """

    def __init__(
        self,
        client: PlasmaClient,
        object_id: ObjectID,
        array: np.ndarray,
        buffer=None,
        schema: ArraySchema | None = None,
    ):
        self._client = client
        self._object_id = object_id
        self._array = array
        self._buffer = buffer
        self._schema = schema
        self._released = False

    @property
    def object_id(self) -> ObjectID:
        return self._object_id

    @property
    def array(self) -> np.ndarray:
        if self._released:
            raise ObjectStoreError("array reference already released")
        return self._array

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(self.array.shape)

    @property
    def dtype(self) -> np.dtype:
        return self.array.dtype

    def copy(self) -> np.ndarray:
        """A private mutable copy.

        Unlike ``.array`` (an untimed zero-copy view), the copy streams the
        payload through the *timed* read path — local memory or the
        ThymesisFlow link — so dataset-style consumption is accounted like
        any other sequential buffer read (the Fig 7 operation).
        """
        if self._released:
            raise ObjectStoreError("array reference already released")
        if self._buffer is None or self._schema is None:
            return np.array(self._array, copy=True)
        raw = bytearray(self._buffer.nbytes)
        self._buffer.read_into(raw)
        return self._schema.view(memoryview(raw)).copy()

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._array = None  # type: ignore[assignment]
            self._client.release(self._object_id)

    @property
    def is_released(self) -> bool:
        return self._released

    def __enter__(self) -> "ArrayRef":
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def __repr__(self) -> str:
        state = "released" if self._released else f"{self._array.dtype}{self._array.shape}"
        return f"ArrayRef({self._object_id!r}, {state})"


def get_array(client: PlasmaClient, object_id: ObjectID) -> ArrayRef:
    """Retrieve a typed array as a zero-copy read-only view.

    Works transparently for local and remote objects; for a remote object
    the view is backed by the ThymesisFlow aperture, so element access
    reads remote memory directly (untimed; use ``ref.copy()`` through the
    timed path when benchmarking reads).
    """
    buffer = client.get_one(object_id)
    try:
        schema = decode_schema(buffer.metadata)
        if schema.nbytes != buffer.nbytes:
            raise ObjectStoreError(
                f"schema says {schema.nbytes} bytes but object has "
                f"{buffer.nbytes}"
            )
        view = schema.view(buffer.view())
    except Exception:
        client.release(object_id)
        raise
    return ArrayRef(client, object_id, view, buffer=buffer, schema=schema)
