"""Array schemas carried in object metadata.

A schema describes how to reinterpret a raw object payload as a typed
array: dtype string, shape, and memory order. It rides in the object's
metadata blob (encoded with the same TLV codec the RPC layer uses, so the
bytes that cross Lookup RPCs are self-describing too).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.common.errors import ObjectStoreError
from repro.common.ids import ObjectID
from repro.rpc.codec import decode_message, encode_message

_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class ArraySchema:
    """Enough to reconstruct an ndarray view over a flat byte buffer."""

    dtype: str
    shape: tuple[int, ...]
    order: str = "C"

    def __post_init__(self) -> None:
        if self.order not in ("C", "F"):
            raise ValueError("order must be 'C' or 'F'")
        np.dtype(self.dtype)  # raises on invalid dtype strings
        if any(d < 0 for d in self.shape):
            raise ValueError("negative dimensions are invalid")

    @classmethod
    def of(cls, array: np.ndarray) -> "ArraySchema":
        if not (array.flags.c_contiguous or array.flags.f_contiguous):
            raise ObjectStoreError(
                "only contiguous arrays can be stored zero-copy; call "
                "np.ascontiguousarray first"
            )
        order = "C" if array.flags.c_contiguous else "F"
        return cls(dtype=array.dtype.str, shape=tuple(array.shape), order=order)

    @property
    def nbytes(self) -> int:
        count = 1
        for d in self.shape:
            count *= d
        return count * np.dtype(self.dtype).itemsize

    def view(self, buffer) -> np.ndarray:
        """A typed read-only ndarray over *buffer* (no copy)."""
        flat = np.frombuffer(buffer, dtype=self.dtype)
        return flat.reshape(self.shape, order=self.order)


def encode_schema(schema: ArraySchema) -> bytes:
    return encode_message(
        {
            "v": _SCHEMA_VERSION,
            "kind": "array",
            "dtype": schema.dtype,
            "shape": list(schema.shape),
            "order": schema.order,
        }
    )


def decode_schema(metadata: bytes) -> ArraySchema:
    if not metadata:
        raise ObjectStoreError("object carries no schema metadata")
    msg = decode_message(metadata)
    if msg.get("kind") != "array" or msg.get("v") != _SCHEMA_VERSION:
        raise ObjectStoreError(f"not an array object (metadata: {msg.get('kind')!r})")
    return ArraySchema(
        dtype=msg["dtype"], shape=tuple(msg["shape"]), order=msg["order"]
    )


def column_object_id(table_id: ObjectID, column: str) -> ObjectID:
    """Deterministically derive a column's object id from its table's id,
    so any node can address columns without extra lookups."""
    digest = hashlib.sha1(table_id.binary() + b"/" + column.encode("utf-8"))
    return ObjectID(digest.digest())
