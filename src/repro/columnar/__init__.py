"""Columnar (Arrow-style) typed access on top of the object store.

Plasma exists to serve the Apache Arrow ecosystem: immutable, schema-tagged,
zero-copy columnar data shared between processes (paper §II-B: "the
standardized format of the store eliminates serialization overhead between
processes"). This package carries that idiom into the disaggregated store:

* :func:`put_array` / :func:`get_array` — NumPy arrays as store objects;
  dtype/shape travel in object *metadata*, payloads are raw buffers, and a
  consumer's :class:`ArrayRef` wraps a **zero-copy read-only view** of the
  (possibly remote) buffer — no serialization in either direction.
* :func:`put_table` / :func:`get_table` — named-column tables: one object
  per column plus a schema object, with column ids derived from the table
  id so any node can address columns directly.
"""

from repro.columnar.schema import ArraySchema, column_object_id, decode_schema, encode_schema
from repro.columnar.array import ArrayRef, get_array, put_array
from repro.columnar.table import TableRef, get_table, put_table

__all__ = [
    "ArraySchema",
    "encode_schema",
    "decode_schema",
    "column_object_id",
    "ArrayRef",
    "put_array",
    "get_array",
    "TableRef",
    "put_table",
    "get_table",
]
