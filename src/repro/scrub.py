"""Anti-entropy scrubber: background integrity sweeps over a store.

Checksums catch corruption *when somebody reads*; objects nobody touches
can rot silently until the day a failover read needs them. The scrubber
closes that window: it walks the store's sealed objects in deterministic
(sorted-id) order, re-verifies every in-region header and payload checksum
against the seal-time values, and acts on what it finds —

* **corrupt object, intact replica** — quarantine, pull the good bytes
  from a replica holder over the ThymesisFlow fabric, repair in place,
  lift the quarantine;
* **corrupt object, no intact replica** — quarantine and leave it: reads
  answer :class:`~repro.common.errors.ObjectCorruptedError` (typed data
  loss) instead of returning garbage;
* **healthy but under-replicated** — push copies until the replication
  target is met again (the anti-entropy half: crashes and skipped
  replications erode the factor; the scrubber restores it).

A scrub is a pure function of the store's state, so same-state scrubs
produce identical :class:`ScrubReport`\\ s — chaos experiments replay them
bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.checksum import crc32c
from repro.common.errors import ObjectStoreError, RpcStatusError


@dataclass(frozen=True)
class ScrubReport:
    """What one scrub pass saw and did."""

    scanned: int = 0
    ok: int = 0
    corrupted: int = 0
    repaired: int = 0
    quarantined: int = 0
    re_replicated: int = 0
    details: tuple[str, ...] = ()

    def describe(self) -> str:
        lines = [
            f"scanned={self.scanned} ok={self.ok} corrupted={self.corrupted} "
            f"repaired={self.repaired} quarantined={self.quarantined} "
            f"re_replicated={self.re_replicated}"
        ]
        lines.extend(f"  {line}" for line in self.details)
        return "\n".join(lines)


class Scrubber:
    """One store's scrub engine; :meth:`run` performs a full pass.

    ``replication_target`` is the number of replica copies each healthy
    home object should have; 0 (the default) disables the re-replication
    half and the scrubber only detects/repairs.
    """

    def __init__(self, store, *, replication_target: int = 0):
        if replication_target < 0:
            raise ValueError("replication_target must be non-negative")
        if not store.header_size:
            raise ObjectStoreError(
                "scrubbing requires integrity_headers: without in-region "
                "headers and seal-time checksums there is nothing to verify"
            )
        self._store = store
        self._replication_target = replication_target

    def run(self) -> ScrubReport:
        store = self._store
        with store.table.lock:
            entries = sorted(
                (entry for entry in store.table if entry.is_sealed),
                key=lambda entry: entry.object_id.binary(),
            )
        scanned = ok = corrupted = repaired = quarantined = re_replicated = 0
        details: list[str] = []
        for entry in entries:
            oid = entry.object_id
            scanned += 1
            reason = None if entry.quarantined else store.verify_object(entry)
            if reason is None and not entry.quarantined:
                ok += 1
                re_replicated += self._top_up_replicas(oid, details)
                continue
            corrupted += 1
            if not entry.quarantined:
                store.quarantine_object(oid)
            details.append(f"{oid!r}: {reason or 'already quarantined'}")
            payload = self._fetch_good_copy(entry)
            if payload is None:
                quarantined += 1
                details.append(f"{oid!r}: no intact replica; left quarantined")
                continue
            store.repair_object(oid, payload)
            repaired += 1
            details.append(f"{oid!r}: repaired from replica")
            re_replicated += self._top_up_replicas(oid, details)
        store.counters.inc("scrub_passes")
        store.counters.inc("scrub_scanned", scanned)
        store.counters.inc("scrub_corrupted", corrupted)
        store.counters.inc("scrub_repaired", repaired)
        store.counters.inc("scrub_quarantined", quarantined)
        store.counters.inc("scrub_re_replicated", re_replicated)
        return ScrubReport(
            scanned=scanned,
            ok=ok,
            corrupted=corrupted,
            repaired=repaired,
            quarantined=quarantined,
            re_replicated=re_replicated,
            details=tuple(details),
        )

    # -- replica cross-check -----------------------------------------------------

    def _known_holders(self, oid) -> tuple[str, ...]:
        """Peers holding copies of our *oid*, cross-checked against reality.

        The home store's replica map is process state: a crash-and-recover
        wipes it while the replicas survive on their holders. When the map
        says nothing, probe every peer with a Lookup and write the
        rediscovered holders back, so repair has sources and re-replication
        never double-places."""
        store = self._store
        recorded = tuple(getattr(store, "replica_locations", lambda _: ())(oid))
        if recorded:
            return recorded
        peers = getattr(store, "peers", lambda: ())()
        actual: list[str] = []
        for name in peers:
            try:
                response = store.peer(name).stub.Lookup(
                    {"object_ids": [oid.binary()]}
                )
            except RpcStatusError:
                continue  # unreachable peer; its copy may resurface later
            if response.get("found", []):
                actual.append(name)
        if actual:
            store.record_replicas(oid, actual)
            store.counters.inc("scrub_replicas_rediscovered", len(actual))
        return tuple(actual)

    # -- repair sourcing ---------------------------------------------------------

    def _fetch_good_copy(self, entry) -> bytes | None:
        """Known-good payload bytes for *entry*, pulled over the fabric from
        a replica holder (or, for a replica, its home store). The seal-time
        CRC arbitrates: a candidate copy that does not match is itself
        corrupt and is skipped."""
        store = self._store
        oid = entry.object_id
        home = getattr(store, "_replicas_of", {}).get(oid)
        # A corrupt *replica* repairs from its home store; a corrupt *home*
        # object repairs from whichever peers hold its replicas.
        sources = [home] if home is not None else list(self._known_holders(oid))
        for name in sources:
            try:
                handle = store.peer(name)
            except ObjectStoreError:
                continue
            try:
                response = handle.stub.Lookup({"object_ids": [oid.binary()]})
            except RpcStatusError:
                continue  # holder unreachable; try the next one
            found = response.get("found", [])
            if not found:
                continue
            descriptor = found[0]
            if int(descriptor.get("data_size", -1)) != entry.data_size:
                continue
            offset = int(descriptor["offset"])
            payload = bytes(handle.remote_region.view(offset, entry.data_size))
            handle.remote_region.charge_read(
                entry.data_size + int(descriptor.get("header_size", 0))
            )
            if crc32c(payload) != entry.payload_crc:
                store.counters.inc("scrub_replica_mismatches")
                continue
            return payload
        return None

    # -- replication-factor restoration ------------------------------------------

    def _top_up_replicas(self, oid, details: list[str]) -> int:
        store = self._store
        target = self._replication_target
        if target <= 0:
            return 0
        if getattr(store, "is_replica", lambda _: False)(oid):
            return 0  # the home store owns the replication factor
        made = 0
        while len(self._known_holders(oid)) < target:
            try:
                holder = store.replicate_object(oid)
            except ObjectStoreError:
                break  # no candidate peer left
            if holder is None:
                break  # chosen peer unavailable; degrade, retry next pass
            details.append(f"{oid!r}: re-replicated to {holder}")
            made += 1
        return made
