"""Known-bug mutations for harness self-checks.

A mutation is a reversible monkey-patch that plants a realistic bug in
the store. The self-check mode (``python -m repro simtest --self-check``)
runs the sweep with a mutation applied and asserts the harness catches
it and shrinks it — proving the oracle actually has teeth, not just
that the happy path is green.
"""

from __future__ import annotations

import contextlib
from typing import Iterator


@contextlib.contextmanager
def _skip_retire() -> Iterator[None]:
    """Plant the pre-PR2 bug: free an extent without retiring its header.

    The sealed header (generation + seal flag + CRC) is left intact in
    region memory, so a crash + region-scan recovery resurrects deleted
    objects — exactly what retire-before-free exists to prevent.
    """

    from repro.plasma.store import PlasmaStore

    original = PlasmaStore._retire_header

    def skip(self, entry):  # noqa: ANN001 - matches patched signature
        return None

    PlasmaStore._retire_header = skip
    try:
        yield
    finally:
        PlasmaStore._retire_header = original


@contextlib.contextmanager
def _skip_replica_retire() -> Iterator[None]:
    """Plant the replica variant: DropReplica frees without retiring."""

    from repro.core.store import DisaggregatedStore
    from repro.plasma.notifications import SealNotification

    original = DisaggregatedStore.drop_replicas

    def drop_without_retire(self, object_ids):  # noqa: ANN001
        dropped = 0
        for oid in object_ids:
            if oid not in self._replicas_of:
                continue
            with self.table.lock:
                entry = self.table.lookup(oid)
                if entry is None:
                    del self._replicas_of[oid]
                    continue
                if entry.total_refs > 0:
                    continue
                self.table.remove(oid)
                self._allocator.free(entry.allocation.offset)
            del self._replicas_of[oid]
            self._retract_from_directory(oid)
            self._notify(SealNotification(oid, entry.data_size, deleted=True))
            self.counters.inc("replicas_dropped")
            dropped += 1
        return dropped

    DisaggregatedStore.drop_replicas = drop_without_retire
    try:
        yield
    finally:
        DisaggregatedStore.drop_replicas = original


MUTATIONS = {
    "skip_retire": _skip_retire,
    "skip_replica_retire": _skip_replica_retire,
}


@contextlib.contextmanager
def apply(name: str | None) -> Iterator[None]:
    """Apply mutation ``name`` for the duration of the context (None = no-op)."""

    if name is None:
        yield
        return
    if name not in MUTATIONS:
        raise ValueError(f"unknown mutation {name!r}; known: {sorted(MUTATIONS)}")
    with MUTATIONS[name]():
        yield
