"""Serializable operation vocabulary for simulation traces.

A trace is a list of :class:`Op` values. Each op is a pure-data record
(kind + scalar args) so traces round-trip through JSON byte-for-byte,
which is what makes golden-seed corpora and emitted pytest reproducers
possible. Every op is *replay-safe*: the harness treats an op whose
precondition no longer holds (node gone, object unknown, too few live
nodes) as a recorded no-op instead of an error, so arbitrary sub-slices
of a trace — as produced by the delta-debugging shrinker — are still
valid traces.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterable, Mapping

#: Op kinds and the argument names each carries. Values are ints or strings.
OP_SCHEMA: Mapping[str, tuple[str, ...]] = {
    # Object lifecycle. ``obj`` is a small int mapped to ObjectID.from_int.
    "put": ("obj", "node", "size", "replicas"),
    "get": ("obj", "node"),
    "delete": ("obj",),
    # Multi-tenant admission control (repro.workload.admission) fuzzed
    # alongside cluster state: tenant_put routes through admit() first, so
    # a put can be refused by a byte quota installed by set_quota.
    "set_quota": ("tenant", "bytes"),
    "tenant_put": ("obj", "node", "size", "replicas", "tenant"),
    # Node lifecycle.
    "add_node": ("node",),
    "drain": ("node",),
    "remove": ("node",),
    "crash": ("node",),
    "recover": ("node",),
    # Fault injection (applied through ChaosRuntime at the current time).
    "partition": ("a", "b"),
    "heal": ("a", "b"),
    "degrade": ("a", "b"),
    "restore": ("a", "b"),
    "blackhole": ("src", "dst", "ms"),
    # Overload control (repro.rpc.overload): throttle one node's service
    # rate live, or inject a burst of queued work its admission model
    # then drains (and sheds) at that rate.
    "set_service_rate": ("node", "rate"),
    "overload_burst": ("node", "ms"),
    # Async RPC core (repro.rpc.aio): flip the mesh between sync and
    # async execution mid-trace, and issue an id-list read the async
    # plane resolves as one coalesced per-peer batched lookup (hedged
    # under faults). ``objs`` is a comma-joined list of small ints —
    # op args are scalars only, so the list rides as a string.
    "set_rpc_mode": ("mode",),
    "multi_get": ("objs", "node"),
    # Tiered memory (repro.tier): targeted moves through the promotion/
    # demotion engine — promote pulls an object's primary to a reading
    # node, demote pushes it to the most capacity-rich peer. Both reuse
    # two-phase migration, so they interleave with crashes and partitions
    # exactly like rebalancer moves.
    "promote": ("obj", "node"),
    "demote": ("obj",),
    # Maintenance / time.
    "scrub": ("node",),
    "rebalance": (),
    "health": (),
    "advance": ("ms",),
}

KINDS = frozenset(OP_SCHEMA)


@dataclass(frozen=True)
class Op:
    """One trace step: an op kind plus a sorted tuple of (name, value) args."""

    kind: str
    args: tuple[tuple[str, int | str], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown op kind {self.kind!r}")
        names = tuple(sorted(name for name, _ in self.args))
        expected = tuple(sorted(OP_SCHEMA[self.kind]))
        if names != expected:
            raise ValueError(
                f"op {self.kind!r} expects args {expected}, got {names}"
            )

    def __getitem__(self, name: str) -> int | str:
        for key, value in self.args:
            if key == name:
                return value
        raise KeyError(name)

    def to_obj(self) -> dict[str, int | str]:
        out: dict[str, int | str] = {"op": self.kind}
        out.update(self.args)
        return out

    @classmethod
    def from_obj(cls, obj: Mapping[str, int | str]) -> "Op":
        data = dict(obj)
        kind = data.pop("op")
        if not isinstance(kind, str):
            raise ValueError(f"op kind must be a string, got {kind!r}")
        return cls(kind, tuple(sorted(data.items())))

    def format(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self.args)
        return f"{self.kind}({inner})"


def make(kind: str, **args: int | str) -> Op:
    """Build an op with keyword args: ``make("put", obj=0, node="node0", ...)``."""

    return Op(kind, tuple(sorted(args.items())))


def ops_to_json(ops: Iterable[Op]) -> str:
    return json.dumps([op.to_obj() for op in ops], indent=2, sort_keys=True)


def ops_from_json(text: str) -> list[Op]:
    raw = json.loads(text)
    if not isinstance(raw, list):
        raise ValueError("trace JSON must be a list of op objects")
    return [Op.from_obj(item) for item in raw]
