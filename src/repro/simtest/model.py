"""Sequential reference model (oracle) for the simulated cluster.

The model tracks, per object, only what a correct store *must* agree
with regardless of schedule:

* ``LIVE`` — a put completed; the object must be readable with exactly
  the generated payload wherever a read succeeds, and after convergence
  it must be readable from its ring home.
* ``MAYBE`` — a put raised; the object may or may not exist, but if any
  bytes are ever returned they must match the generated payload.
* ``DELETED_CLEAN`` — a delete completed while the cluster was quiet
  (no crashed nodes, no active faults, holder breakers closed, and no
  crash had previously wiped replica bookkeeping for the object). The
  object must never be readable again.
* ``DELETED_DIRTY`` — a delete completed but some fault may have left a
  stray replica whose tombstone could not be delivered. Reads may fail
  or may return the payload, but never wrong bytes.

Payloads are a pure function of ``(obj, size)`` so the oracle never
stores data and traces stay self-contained.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.common.rng import DeterministicRng, derive_seed

#: Fixed payload namespace — independent of the workload seed so that a
#: trace replayed from a corpus file regenerates identical bytes.
_PAYLOAD_NAMESPACE = 0x51517E57


class ObjState(enum.Enum):
    LIVE = "live"
    MAYBE = "maybe"
    DELETED_CLEAN = "deleted_clean"
    DELETED_DIRTY = "deleted_dirty"


def payload_for(obj: int, size: int) -> bytes:
    """Deterministic payload for object number ``obj``."""

    rng = DeterministicRng(derive_seed(_PAYLOAD_NAMESPACE, "simtest-payload", str(obj)))
    return rng.bytes(size)


def metadata_for(obj: int) -> bytes:
    return f"simtest-obj-{obj}".encode("ascii")


@dataclass
class Model:
    """Oracle state, updated in program order as the harness executes ops."""

    states: dict[int, ObjState] = field(default_factory=dict)
    sizes: dict[int, int] = field(default_factory=dict)
    #: Objects whose replica/holder bookkeeping was wiped by a node crash;
    #: a later delete of these can legitimately leave stray copies behind.
    dirty_delete: set[int] = field(default_factory=set)
    #: Objects that held a replica on a node that crashed: after recovery the
    #: region scan resurrects the replica as an ordinary sealed extent, so the
    #: duplicate-primary invariant must give these objects amnesty.
    amnesty: set[int] = field(default_factory=set)

    def state(self, obj: int) -> ObjState | None:
        return self.states.get(obj)

    def size(self, obj: int) -> int:
        return self.sizes[obj]

    def record_put_ok(self, obj: int, size: int) -> None:
        self.states[obj] = ObjState.LIVE
        self.sizes[obj] = size

    def record_put_failed(self, obj: int, size: int) -> None:
        self.states[obj] = ObjState.MAYBE
        self.sizes[obj] = size

    def record_deleted(self, obj: int, *, clean: bool) -> None:
        self.states[obj] = ObjState.DELETED_CLEAN if clean else ObjState.DELETED_DIRTY

    def mark_crash_exposure(self, objs: set[int]) -> None:
        """A node holding extents for ``objs`` crashed: future deletes of
        these objects are dirty and duplicate primaries are excused."""

        self.dirty_delete |= objs
        self.amnesty |= objs

    def live_objects(self) -> list[int]:
        return sorted(o for o, s in self.states.items() if s is ObjState.LIVE)

    def objects(self) -> list[int]:
        return sorted(self.states)
