"""Seeded weighted workload generator.

``generate_ops(seed, n)`` is a pure function: the same seed always
yields the same op list, independent of any cluster state. The
generator keeps its own *approximate* bookkeeping (which nodes it has
crashed/drained/removed, which object ids it has put) purely to bias
the stream toward interesting schedules; the harness re-validates every
precondition at execution time, so the bookkeeping here only has to be
deterministic, not exact.
"""

from __future__ import annotations

from repro.common.rng import DeterministicRng, derive_seed
from repro.simtest.ops import Op, make

SEED_NODES = ("node0", "node1", "node2")
MAX_NODES = 6

_SIZES = (64, 256, 1024, 4096, 8192)
_REPLICAS = (1, 1, 1, 2, 2, 3)
_ADVANCE_MS = (1, 2, 5, 10, 60, 300)
_BLACKHOLE_MS = (1, 5, 20)
#: Service rates ``set_service_rate`` toggles between (0 = infinite) and
#: the stall sizes ``overload_burst`` injects. Rates must be low enough
#: that one service time exceeds a typical inter-arrival gap, else the
#: bounded queue never fills between sequential ops.
_SERVICE_RATES = (0, 50, 200, 1000)
_BURST_MS = (5, 20, 100)
#: Tenants the admission-control ops draw from, and the byte-quota levels
#: set_quota installs — small enough that a few tenant_puts trip them.
TENANTS = ("alpha", "beta")
_QUOTA_BYTES = (1024, 8192, 65536)

#: Ids per multi_get in the concurrency profile: wide enough that one
#: call usually spans several holders (scatter-gather + coalescing).
_MULTI_GET_FANOUT = (2, 3, 4, 6)

#: (kind, weight) — relative frequency of each op kind in the stream.
WEIGHTS: tuple[tuple[str, int], ...] = (
    ("put", 20),
    ("tenant_put", 6),
    ("set_quota", 3),
    ("get", 22),
    ("delete", 7),
    ("crash", 4),
    ("recover", 8),
    ("partition", 3),
    ("heal", 5),
    ("degrade", 2),
    ("restore", 3),
    ("blackhole", 2),
    ("set_service_rate", 2),
    ("overload_burst", 2),
    ("promote", 3),
    ("demote", 2),
    ("add_node", 2),
    ("drain", 2),
    ("remove", 1),
    ("scrub", 3),
    ("rebalance", 5),
    ("health", 8),
    ("advance", 9),
)

#: Concurrency-stress weighting: the data-path ops that exercise the
#: async task plane (gets, puts, deletes, batched multi-gets) dominate,
#: with crashes and blackholes kept so batches land mid-fault and hedges
#: actually fire; occasional set_rpc_mode flips stress the sync/async
#: boundary itself. The drain/remove/overload machinery is left out —
#: it is covered by the default profile and only dilutes the schedule
#: space this profile explores.
CONCURRENCY_WEIGHTS: tuple[tuple[str, int], ...] = (
    ("put", 24),
    ("get", 20),
    ("multi_get", 14),
    ("delete", 10),
    ("set_rpc_mode", 2),
    ("crash", 3),
    ("recover", 6),
    ("partition", 2),
    ("heal", 4),
    ("blackhole", 4),
    ("promote", 2),
    ("demote", 2),
    ("scrub", 2),
    ("rebalance", 3),
    ("health", 5),
    ("advance", 7),
)

PROFILE_WEIGHTS: dict[str, tuple[tuple[str, int], ...]] = {
    "default": WEIGHTS,
    "concurrency": CONCURRENCY_WEIGHTS,
}


class _Book:
    """Generator-side bookkeeping, deterministic mirror of likely cluster state."""

    def __init__(self) -> None:
        self.nodes: list[str] = list(SEED_NODES)
        self.crashed: set[str] = set()
        self.drained: set[str] = set()
        self.removed: set[str] = set()
        self.partitions: set[tuple[str, str]] = set()
        self.degraded: set[tuple[str, str]] = set()
        self.next_obj = 0
        self.next_node = 0
        self.live_objs: list[int] = []

    def present(self) -> list[str]:
        return [n for n in self.nodes if n not in self.removed]

    def up(self) -> list[str]:
        return [n for n in self.present() if n not in self.crashed]

    def active(self) -> list[str]:
        return [n for n in self.up() if n not in self.drained]


def _pair(rng: DeterministicRng, names: list[str]) -> tuple[str, str]:
    a = rng.choice(names)
    rest = [n for n in names if n != a]
    return a, rng.choice(rest)


def generate_ops(seed: int, n_ops: int, profile: str = "default") -> list[Op]:
    """Produce a deterministic trace of ``n_ops`` ops for ``seed``.

    ``profile`` selects the kind weighting (:data:`PROFILE_WEIGHTS`).
    The default profile draws exactly the entropy it always has, so
    every pre-existing trace and golden seed stays byte-identical. The
    ``concurrency`` profile pins op 0 to ``set_rpc_mode(mode=async)``
    so the bulk of the trace runs on the event-loop task plane.
    """

    rng = DeterministicRng(derive_seed(seed, "simtest-workload"))
    kinds = [k for k, w in PROFILE_WEIGHTS[profile] for _ in range(w)]
    book = _Book()
    ops: list[Op] = []
    if profile == "concurrency" and n_ops > 0:
        ops.append(make("set_rpc_mode", mode="async"))

    def fallback() -> Op:
        # Substituted when a drawn kind has no valid target; keeps the
        # trace length exact and still consumes deterministic entropy.
        if rng.integer(0, 2) == 0:
            return make("health")
        return make("advance", ms=int(rng.choice(list(_ADVANCE_MS))))

    while len(ops) < n_ops:
        kind = str(rng.choice(kinds))
        op: Op | None = None

        if kind == "put":
            node = rng.choice(book.up()) if book.up() else None
            if node is not None:
                obj = book.next_obj
                book.next_obj += 1
                book.live_objs.append(obj)
                op = make(
                    "put",
                    obj=obj,
                    node=str(node),
                    size=int(rng.choice(list(_SIZES))),
                    replicas=int(rng.choice(list(_REPLICAS))),
                )
        elif kind == "tenant_put":
            node = rng.choice(book.up()) if book.up() else None
            if node is not None:
                obj = book.next_obj
                book.next_obj += 1
                # Approximate: the put may be refused by admission control,
                # but gets on a never-created id are judged notfound-OK.
                book.live_objs.append(obj)
                op = make(
                    "tenant_put",
                    obj=obj,
                    node=str(node),
                    size=int(rng.choice(list(_SIZES))),
                    replicas=int(rng.choice(list(_REPLICAS))),
                    tenant=str(rng.choice(list(TENANTS))),
                )
        elif kind == "set_quota":
            op = make(
                "set_quota",
                tenant=str(rng.choice(list(TENANTS))),
                bytes=int(rng.choice(list(_QUOTA_BYTES))),
            )
        elif kind == "get":
            if book.live_objs and book.up():
                # Mostly read known-live objects, sometimes stale/unknown ids.
                if book.next_obj and rng.integer(0, 100) < 15:
                    obj = rng.integer(0, book.next_obj)
                else:
                    obj = int(rng.choice(book.live_objs))
                op = make("get", obj=obj, node=str(rng.choice(book.up())))
        elif kind == "multi_get":
            if book.live_objs and book.up():
                count = int(rng.choice(list(_MULTI_GET_FANOUT)))
                picks = [
                    int(rng.choice(book.live_objs)) for _ in range(count)
                ]
                # Occasionally poison one slot with a stale/unknown id so
                # batched lookups mix hits and misses in one wire message.
                if book.next_obj and rng.integer(0, 100) < 15:
                    picks[0] = int(rng.integer(0, book.next_obj))
                op = make(
                    "multi_get",
                    objs=",".join(str(o) for o in picks),
                    node=str(rng.choice(book.up())),
                )
        elif kind == "set_rpc_mode":
            # Mostly stay async (the plane under stress), sometimes flip
            # back to sync so mode switches interleave with faults.
            mode = "sync" if rng.integer(0, 4) == 0 else "async"
            op = make("set_rpc_mode", mode=mode)
        elif kind == "delete":
            if book.live_objs:
                obj = int(rng.choice(book.live_objs))
                book.live_objs.remove(obj)
                op = make("delete", obj=obj)
        elif kind == "crash":
            if len(book.up()) >= 2:
                node = str(rng.choice(book.up()))
                book.crashed.add(node)
                op = make("crash", node=node)
        elif kind == "recover":
            if book.crashed:
                node = str(rng.choice(sorted(book.crashed)))
                book.crashed.discard(node)
                op = make("recover", node=node)
        elif kind == "partition":
            if len(book.present()) >= 2:
                a, b = _pair(rng, book.present())
                book.partitions.add((min(a, b), max(a, b)))
                op = make("partition", a=a, b=b)
        elif kind == "heal":
            if book.partitions:
                a, b = rng.choice(sorted(book.partitions))
                book.partitions.discard((a, b))
                op = make("heal", a=a, b=b)
        elif kind == "degrade":
            if len(book.present()) >= 2:
                a, b = _pair(rng, book.present())
                book.degraded.add((min(a, b), max(a, b)))
                op = make("degrade", a=a, b=b)
        elif kind == "restore":
            if book.degraded:
                a, b = rng.choice(sorted(book.degraded))
                book.degraded.discard((a, b))
                op = make("restore", a=a, b=b)
        elif kind == "blackhole":
            if len(book.present()) >= 2:
                src, dst = _pair(rng, book.present())
                op = make(
                    "blackhole",
                    src=src,
                    dst=dst,
                    ms=int(rng.choice(list(_BLACKHOLE_MS))),
                )
        elif kind == "set_service_rate":
            if book.present():
                op = make(
                    "set_service_rate",
                    node=str(rng.choice(book.present())),
                    rate=int(rng.choice(list(_SERVICE_RATES))),
                )
        elif kind == "overload_burst":
            if book.present():
                op = make(
                    "overload_burst",
                    node=str(rng.choice(book.present())),
                    ms=int(rng.choice(list(_BURST_MS))),
                )
        elif kind == "promote":
            if book.live_objs and book.up():
                op = make(
                    "promote",
                    obj=int(rng.choice(book.live_objs)),
                    node=str(rng.choice(book.up())),
                )
        elif kind == "demote":
            if book.live_objs:
                op = make("demote", obj=int(rng.choice(book.live_objs)))
        elif kind == "add_node":
            if len(book.present()) < MAX_NODES:
                name = f"sim{book.next_node}"
                book.next_node += 1
                book.nodes.append(name)
                op = make("add_node", node=name)
        elif kind == "drain":
            if len(book.active()) >= 3:
                node = str(rng.choice(book.active()))
                book.drained.add(node)
                op = make("drain", node=node)
        elif kind == "remove":
            drained_up = sorted(set(book.drained) - book.crashed - book.removed)
            if drained_up and len(book.present()) >= 3:
                node = str(rng.choice(drained_up))
                book.removed.add(node)
                op = make("remove", node=node)
        elif kind == "scrub":
            if book.up():
                op = make("scrub", node=str(rng.choice(book.up())))
        elif kind == "rebalance":
            op = make("rebalance")
        elif kind == "health":
            op = make("health")
        elif kind == "advance":
            op = make("advance", ms=int(rng.choice(list(_ADVANCE_MS))))

        ops.append(op if op is not None else fallback())

    return ops
