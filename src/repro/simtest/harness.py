"""Simulation runner: apply a trace to a real Cluster, check the oracle.

The runner owns a three-node seed cluster (placement + chaos + RPC
sharing enabled), executes ops one at a time, and records a one-line
outcome per op. Because every component runs on the simulated clock and
all randomness flows from the seed, the recorded trace text is
byte-identical across runs — the determinism the shrinker and the
golden-seed corpus rely on.

Invariants checked (violations stop the run):

* **oracle agreement** — get outcomes must be consistent with the
  sequential model (no phantom objects, no lost objects on a quiet
  cluster, no resurrection after a clean delete, bytes always exact);
* **sealed immutability / CRC** — every sealed extent passes
  ``verify_object`` and its at-rest bytes equal the generated payload;
* **no duplicate primaries** — at most one live sealed non-replica
  extent per object id (crash-recovery amnesty aside);
* **allocator accounting** — ``used_bytes`` equals the sum of live
  extent padded sizes, and ``Allocator.audit()`` holds;
* **topology epochs** — per-node epochs never move backwards;
* **convergence** — after healing every fault, breakers close, the
  rebalancer converges, and every surviving object is readable from its
  ring home with exact bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.chaos import (
    FaultPlan,
    LinkDegrade,
    LinkHeal,
    LinkPartition,
    LinkRestore,
    NodeCrash,
    NodeRestart,
    OverloadBurst,
    RpcBlackhole,
)
from repro.common.clock import NS_PER_MS
from repro.common.config import ClusterConfig, OverloadConfig
from repro.common.errors import (
    AdmissionRejectedError,
    ObjectCorruptedError,
    ObjectNotFoundError,
    ObjectUnavailableError,
    ReproError,
    StaleDescriptorError,
)
from repro.common.ids import ObjectID
from repro.common.units import MiB
from repro.core import Cluster
from repro.obs.spans import SpanConfig
from repro.core.health import BreakerState
from repro.placement.membership import NodeStatus
from repro.scrub import Scrubber
from repro.simtest import mutations
from repro.simtest.model import Model, ObjState, metadata_for, payload_for
from repro.simtest.ops import Op
from repro.simtest.workload import SEED_NODES, generate_ops
from repro.workload.admission import AdmissionController, TenantQuota

#: Per-node region size. Large enough that the workload never triggers
#: eviction (which would invalidate the oracle's LIVE bookkeeping).
CAPACITY_BYTES = 8 * MiB

#: Structural (allocator/table/at-rest-bytes) checks run every N ops.
DEEP_CHECK_EVERY = 25

#: Bounded per-server request queue. Inert until a trace sets a finite
#: service rate (``set_service_rate``), so legacy traces replay
#: unchanged; small enough that an ``overload_burst`` can fill it and
#: force RESOURCE_EXHAUSTED sheds.
OVERLOAD_QUEUE_DEPTH = 16

#: Async hedged-lookup stagger armed in every harness cluster. Only the
#: event-loop probe path reads it, so traces that never issue
#: ``set_rpc_mode(mode=async)`` replay byte-identical; once a trace goes
#: async, a blackholed primary (1–20 ms holes) outlives the stagger and
#: the hedge probe actually races.
HEDGE_STAGGER_NS = 4 * NS_PER_MS

#: Sweep presets: (n_seeds, n_ops, workload profile). The concurrency
#: profile runs the async event-loop RPC plane under the same oracle —
#: pipelined data-path ops, batched multi-gets, mid-trace mode flips.
PROFILES = {
    "smoke": (100, 200, "default"),
    "nightly": (500, 300, "default"),
    "concurrency": (300, 200, "concurrency"),
}


@dataclass(frozen=True)
class Violation:
    kind: str
    op_index: int
    message: str

    def describe(self) -> str:
        return f"[{self.kind}] at op {self.op_index}: {self.message}"


@dataclass
class RunResult:
    seed: int
    ops: list[Op]
    steps: list[str]
    violations: list[Violation]
    mutation: str | None = None
    # Post-mortem span dump: the per-node flight-recorder rings at the
    # moment the run stopped (populated only when violations fired).
    # Deterministic — replaying the same trace reproduces it byte for
    # byte — so it ships next to the shrunk reproducer.
    flight: dict | None = None

    @property
    def ok(self) -> bool:
        return not self.violations

    def trace_text(self) -> str:
        return "\n".join(self.steps) + "\n"

    def report(self) -> str:
        lines = [f"seed={self.seed} ops={len(self.ops)} "
                 f"{'OK' if self.ok else 'FAILED'}"]
        lines += [v.describe() for v in self.violations]
        return "\n".join(lines)

    def to_trace(self) -> dict:
        out = {"seed": self.seed, "ops": [op.to_obj() for op in self.ops]}
        if self.mutation is not None:
            out["mutation"] = self.mutation
        return out


class SimulationRunner:
    """Execute one op trace against a fresh cluster and judge the result."""

    def __init__(self, seed: int, *, mutation: str | None = None):
        self.seed = seed
        self.mutation = mutation
        self.model = Model()
        self.steps: list[str] = []
        self.violations: list[Violation] = []
        self._op_index = -1
        self._present: list[str] = list(SEED_NODES)
        self._crashed: set[str] = set()
        self._removed: set[str] = set()
        self._partitions: set[tuple[str, str]] = set()
        self._degraded: set[tuple[str, str]] = set()
        self._blackhole_until = 0
        self._epochs: dict[str, int] = {}
        self._clients: dict[str, object] = {}
        # Admission-control state fuzzed alongside the cluster: set_quota
        # installs byte quotas, tenant_put routes through admit() first.
        # Accounting is client-side and approximate on purpose (a crash
        # wiping a store does not refund the tenant), mirroring how the
        # workload plane tracks footprint.
        self.admission = AdmissionController()
        self._tenant_of: dict[int, tuple[str, int]] = {}
        # Cache-coherence oracle state: set by _read when the hot-object
        # cache (not the fabric) produced the bytes of the last get.
        self._last_cached: tuple[int, str] | None = None
        self.cluster: Cluster | None = None

    # ------------------------------------------------------------------ setup

    def _build_cluster(self) -> Cluster:
        config = ClusterConfig(seed=self.seed).with_store(
            capacity_bytes=CAPACITY_BYTES
        )
        config = replace(
            config, overload=OverloadConfig(queue_depth=OVERLOAD_QUEUE_DEPTH)
        )
        config = replace(
            config,
            rpc=replace(config.rpc, hedge_stagger_ns=HEDGE_STAGGER_NS),
        )
        return Cluster(
            config,
            node_names=list(SEED_NODES),
            sharing="rpc",
            enable_lookup_cache=True,
            check_remote_uniqueness=False,
            fault_plan=FaultPlan(),
            placement=True,
            # Tiering plane armed: every get runs through the hot-object
            # cache (exercising its coherence machinery under faults) and
            # the promote/demote ops drive the tier engine directly.
            tiering=True,
            # Flight-recorder-only tracing: no head sampling and no
            # retained traces (max_traces=0), just the bounded per-node
            # rings — the crash dump a violation ships with. Tracing
            # never advances the clock, so trace text is unchanged.
            tracing=SpanConfig(sample_rate=0.0, max_traces=0),
        )

    # ------------------------------------------------------------------ run

    def run(self, ops: list[Op]) -> RunResult:
        with mutations.apply(self.mutation):
            self.cluster = self._build_cluster()
            for index, op in enumerate(ops):
                self._op_index = index
                outcome = self._execute(op)
                if self.cluster.rpc_mode == "async":
                    # Run stragglers out (hedge losers, coalesced flushes):
                    # the facade drive returns when *its* task resolves, and
                    # a pending admitted call would otherwise pin breaker
                    # probe slots across ops — in a real deployment the
                    # loop never stops between requests.
                    self.cluster.loop.drain()
                self.steps.append(f"{index:04d} {op.format()} -> {outcome}")
                self._check_epochs()
                if not self.violations and (index + 1) % DEEP_CHECK_EVERY == 0:
                    self._deep_check()
                if self.violations:
                    break
            if not self.violations:
                self._deep_check()
            if not self.violations:
                self._converge_and_sweep()
        for violation in self.violations:
            self.steps.append(f"VIOLATION {violation.describe()}")
        flight = None
        if self.violations and self.cluster is not None:
            sink = self.cluster.spans
            if sink is not None:
                flight = sink.flight_dump()
        return RunResult(
            seed=self.seed,
            ops=list(ops),
            steps=self.steps,
            violations=list(self.violations),
            mutation=self.mutation,
            flight=flight,
        )

    # ------------------------------------------------------------------ helpers

    def _violate(self, kind: str, message: str) -> None:
        self.violations.append(Violation(kind, self._op_index, message))

    def _now(self) -> int:
        return self.cluster.clock.now_ns

    def _up(self) -> list[str]:
        return [n for n in self._present if n not in self._crashed]

    def _client(self, node: str):
        client = self._clients.get(node)
        if client is None:
            client = self.cluster.client(node, client_name=f"sim-{node}")
            self._clients[node] = client
        return client

    def _drop_client(self, node: str) -> None:
        self._clients.pop(node, None)

    def _faults_active(self) -> bool:
        return bool(
            self._crashed
            or self._partitions
            or self._now() < self._blackhole_until
            or self._overload_active()
        )

    def _overload_active(self) -> bool:
        """True while any server can shed: a finite service rate is set
        or injected backlog has not drained. Sheds (RESOURCE_EXHAUSTED)
        make reads fail and writes land as MAYBE, so the oracle excuses
        quiet-cluster guarantees exactly as it does for link faults."""
        for name in self._present:
            if name in self._crashed:
                continue
            model = getattr(self.cluster.node(name).server, "overload", None)
            if model is not None and model.active:
                return True
        return False

    def _breakers_closed(self, node: str) -> bool:
        for peer, channel in sorted(self.cluster.node(node).channels.items()):
            if peer not in self._present or peer in self._crashed:
                continue
            breaker = channel.breaker
            if breaker is not None and breaker.state is not BreakerState.CLOSED:
                return False
        return True

    def _degraded_visibility(self, node: str) -> bool:
        """True when a failed read from ``node`` is excusable."""

        return self._faults_active() or not self._breakers_closed(node)

    @staticmethod
    def _obj_of(object_id: ObjectID) -> int:
        return int.from_bytes(object_id.binary(), "big")

    def _mark_exposure(self, node: str) -> None:
        """A node's store state is about to be wiped (crash or rebuild):
        give every object with an extent there dirty-delete/dup amnesty."""

        store = self.cluster.store(node)
        with store.table.lock:
            objs = {self._obj_of(e.object_id) for e in store.table}
        self.model.mark_crash_exposure(objs)

    def _find_holder(self, object_id: ObjectID) -> str | None:
        """Node holding the live sealed primary extent, if any."""

        for name in sorted(self._up()):
            store = self.cluster.store(name)
            if object_id in store.deferred_retires():
                continue
            if store.is_replica(object_id):
                continue
            with store.table.lock:
                entry = store.table.lookup(object_id)
                if entry is not None and entry.is_sealed and not entry.quarantined:
                    return name
        return None

    # ------------------------------------------------------------------ ops

    def _execute(self, op: Op) -> str:
        handler = getattr(self, f"_do_{op.kind}")
        try:
            return handler(op)
        except Exception as exc:  # noqa: BLE001 - an exception escaping the
            # handler (ReproError or not) is a finding worth shrinking, not a
            # harness crash.
            self._violate(
                "unexpected-exception",
                f"{op.format()} raised {type(exc).__name__}: {exc}",
            )
            return f"crash:{type(exc).__name__}"

    def _do_put(self, op: Op) -> str:
        node = str(op["node"])
        obj = int(op["obj"])
        if node not in self._up():
            return "skip:node-down"
        if self.model.state(obj) is not None:
            return "skip:obj-reused"
        size = int(op["size"])
        oid = ObjectID.from_int(obj)
        store = self.cluster.store(node)
        replicas = min(int(op["replicas"]), 1 + len(store.peers()))
        try:
            self._client(node).put_bytes(
                oid, payload_for(obj, size), metadata_for(obj), replicas=replicas
            )
        except ReproError as exc:
            self.model.record_put_failed(obj, size)
            return f"fail:{type(exc).__name__}"
        self.model.record_put_ok(obj, size)
        return "ok"

    def _do_set_quota(self, op: Op) -> str:
        self.admission.set_quota(
            str(op["tenant"]),
            TenantQuota(max_stored_bytes=int(op["bytes"])),
            now_ns=self._now(),
        )
        return "ok"

    def _do_tenant_put(self, op: Op) -> str:
        node = str(op["node"])
        obj = int(op["obj"])
        tenant = str(op["tenant"])
        if node not in self._up():
            return "skip:node-down"
        if self.model.state(obj) is not None:
            return "skip:obj-reused"
        size = int(op["size"])
        try:
            self.admission.admit(tenant, "write", size, self._now())
        except AdmissionRejectedError as exc:
            # Refused at the entry point: no cluster work happened, the
            # model must keep treating the object as never-created.
            return f"rejected:{exc.reason}"
        oid = ObjectID.from_int(obj)
        store = self.cluster.store(node)
        replicas = min(int(op["replicas"]), 1 + len(store.peers()))
        try:
            self._client(node).put_bytes(
                oid, payload_for(obj, size), metadata_for(obj), replicas=replicas
            )
        except ReproError as exc:
            self.model.record_put_failed(obj, size)
            return f"fail:{type(exc).__name__}"
        self.model.record_put_ok(obj, size)
        self.admission.record_stored(tenant, size)
        self._tenant_of[obj] = (tenant, size)
        return "ok"

    def _do_get(self, op: Op) -> str:
        node = str(op["node"])
        obj = int(op["obj"])
        if node not in self._up():
            return "skip:node-down"
        oid = ObjectID.from_int(obj)
        state = self.model.state(obj)
        outcome, data = self._read(node, oid)
        self._judge_get(obj, state, node, outcome, data)
        return outcome

    def _read(self, node: str, oid: ObjectID) -> tuple[str, bytes | None]:
        client = self._client(node)
        # Arm the coherence oracle: clear the node cache's last-served
        # stamp so a hit during *this* get is unambiguously attributable.
        agent = client.store.tier_agent
        cache = agent.cache if agent is not None else None
        self._last_cached = None
        if cache is not None:
            cache.last_served = None
        try:
            buffers = client.get([oid], allow_missing=True)
        except ObjectUnavailableError:
            return "unavailable", None
        except ObjectCorruptedError:
            return "corrupt", None
        except StaleDescriptorError:
            return "stale", None
        except ReproError as exc:
            return f"error:{type(exc).__name__}", None
        buffer = buffers[0]
        if buffer is None:
            return "notfound", None
        try:
            data = buffer.read_all()
        except ObjectCorruptedError:
            return "corrupt", None
        except StaleDescriptorError:
            return "stale", None
        except ReproError as exc:
            return f"error:{type(exc).__name__}", None
        finally:
            client.release(oid)
        if (
            cache is not None
            and cache.last_served is not None
            and cache.last_served[0] == oid
        ):
            self._last_cached = (cache.last_served[1], node)
        return "ok", data

    def _judge_get(
        self,
        obj: int,
        state: ObjState | None,
        node: str,
        outcome: str,
        data: bytes | None,
    ) -> None:
        excused = self._degraded_visibility(node)
        if outcome == "ok":
            cached = self._last_cached
            if state is None:
                self._violate("phantom-object", f"get({obj}) returned bytes "
                              "for an object that was never put")
            elif state is ObjState.DELETED_CLEAN:
                self._violate("resurrection", f"get({obj}) returned bytes "
                              "after a clean delete")
                if cached is not None:
                    # The dangerous staleness the cache could introduce: a
                    # serve that outlived the object's delete-invalidation
                    # push. Reported under its own kind so shrinking homes
                    # in on the coherence machinery, not the delete path.
                    self._violate(
                        "cache-incoherence",
                        f"get({obj}) on {node} was served generation "
                        f"{cached[0]} from the hot-object cache after a "
                        "clean delete",
                    )
            elif data != payload_for(obj, self.model.size(obj)):
                self._violate("wrong-bytes", f"get({obj}) returned "
                              f"{len(data)} bytes that do not match the "
                              "generated payload")
                if cached is not None:
                    self._violate(
                        "cache-incoherence",
                        f"get({obj}) on {node}: hot-object cache served "
                        f"generation {cached[0]} whose bytes do not match "
                        "the model payload",
                    )
            return
        if outcome == "corrupt":
            self._violate("corruption", f"get({obj}) raised corruption")
            return
        if state is ObjState.LIVE:
            if outcome == "notfound" and not excused:
                self._violate("lost-object", f"get({obj}) -> notfound on a "
                              "quiet cluster for a live object")
            elif outcome in ("unavailable", "stale") and not excused:
                self._violate("unavailable-quiet", f"get({obj}) -> {outcome} "
                              "on a quiet cluster for a live object")
            elif outcome.startswith("error:") and not excused:
                self._violate("unavailable-quiet", f"get({obj}) -> {outcome} "
                              "on a quiet cluster for a live object")

    def _do_set_rpc_mode(self, op: Op) -> str:
        self.cluster.set_rpc_mode(str(op["mode"]))
        return "ok"

    def _do_multi_get(self, op: Op) -> str:
        node = str(op["node"])
        if node not in self._up():
            return "skip:node-down"
        objs = [int(item) for item in str(op["objs"]).split(",")]
        states = [self.model.state(obj) for obj in objs]
        outcomes, payloads = self._multi_read(node, objs)
        for obj, state, outcome, data in zip(objs, states, outcomes, payloads):
            self._judge_get(obj, state, node, outcome, data)
        return ",".join(outcomes)

    def _multi_read(
        self, node: str, objs: list[int]
    ) -> tuple[list[str], list[bytes | None]]:
        """One id-list read; in async mode this is a coalesced batched
        lookup (hedged under faults). A whole-call failure stamps every
        slot with the same outcome — the judge excuses it exactly like a
        failed single get. The coherence oracle stays disarmed: a batch
        has no single unambiguous cache serve to attribute."""

        client = self._client(node)
        self._last_cached = None
        oids = [ObjectID.from_int(obj) for obj in objs]
        try:
            payloads = client.multi_get(oids, allow_missing=True)
        except ObjectUnavailableError:
            return ["unavailable"] * len(objs), [None] * len(objs)
        except ObjectCorruptedError:
            return ["corrupt"] * len(objs), [None] * len(objs)
        except StaleDescriptorError:
            return ["stale"] * len(objs), [None] * len(objs)
        except ReproError as exc:
            outcome = f"error:{type(exc).__name__}"
            return [outcome] * len(objs), [None] * len(objs)
        outcomes = [
            "notfound" if data is None else "ok" for data in payloads
        ]
        return outcomes, list(payloads)

    def _do_delete(self, op: Op) -> str:
        obj = int(op["obj"])
        state = self.model.state(obj)
        if state not in (ObjState.LIVE, ObjState.MAYBE):
            return "skip:not-live"
        oid = ObjectID.from_int(obj)
        holder = self._find_holder(oid)
        if holder is None:
            if state is ObjState.LIVE and not self._faults_active():
                self._violate("lost-object",
                              f"delete({obj}): live object has no sealed "
                              "primary extent on a quiet cluster")
            return "skip:no-holder"
        clean = (
            state is ObjState.LIVE
            and not self._faults_active()
            and obj not in self.model.dirty_delete
            and self._breakers_closed(holder)
        )
        try:
            self.cluster.store(holder).delete_object(oid)
        except ReproError as exc:
            self.model.record_deleted(obj, clean=False)
            return f"fail:{type(exc).__name__}"
        self.model.record_deleted(obj, clean=clean)
        owner = self._tenant_of.pop(obj, None)
        if owner is not None:
            self.admission.record_stored(owner[0], -owner[1])
        return "ok:clean" if clean else "ok:dirty"

    def _do_crash(self, op: Op) -> str:
        node = str(op["node"])
        if node not in self._up() or len(self._up()) < 2:
            return "skip"
        self._mark_exposure(node)
        self.cluster.chaos.inject(NodeCrash(at_ns=self._now(), node=node))
        self.cluster.chaos.poll()
        self._crashed.add(node)
        self._drop_client(node)
        return "ok"

    def _do_recover(self, op: Op) -> str:
        node = str(op["node"])
        if node not in self._crashed or node not in self._present:
            return "skip"
        self._recover_one(node)
        return "ok"

    def _recover_one(self, node: str) -> None:
        self._mark_exposure(node)
        if node in self._crashed:
            self.cluster.chaos.inject(NodeRestart(at_ns=self._now(), node=node))
            self.cluster.chaos.poll()
        self.cluster.recover_node(node)
        self._crashed.discard(node)
        self._drop_client(node)
        self._epochs.pop(node, None)

    def _do_partition(self, op: Op) -> str:
        a, b = str(op["a"]), str(op["b"])
        pair = (min(a, b), max(a, b))
        if a == b or a in self._removed or b in self._removed:
            return "skip"
        if pair in self._partitions:
            return "skip:already"
        self.cluster.chaos.inject(
            LinkPartition(at_ns=self._now(), node_a=a, node_b=b)
        )
        self.cluster.chaos.poll()
        self._partitions.add(pair)
        return "ok"

    def _do_heal(self, op: Op) -> str:
        a, b = str(op["a"]), str(op["b"])
        pair = (min(a, b), max(a, b))
        if pair not in self._partitions:
            return "skip"
        self.cluster.chaos.inject(LinkHeal(at_ns=self._now(), node_a=a, node_b=b))
        self.cluster.chaos.poll()
        self._partitions.discard(pair)
        return "ok"

    def _do_degrade(self, op: Op) -> str:
        a, b = str(op["a"]), str(op["b"])
        pair = (min(a, b), max(a, b))
        if a == b or a in self._removed or b in self._removed:
            return "skip"
        if pair in self._degraded:
            return "skip:already"
        self.cluster.chaos.inject(
            LinkDegrade(at_ns=self._now(), node_a=a, node_b=b)
        )
        self.cluster.chaos.poll()
        self._degraded.add(pair)
        return "ok"

    def _do_restore(self, op: Op) -> str:
        a, b = str(op["a"]), str(op["b"])
        pair = (min(a, b), max(a, b))
        if pair not in self._degraded:
            return "skip"
        self.cluster.chaos.inject(
            LinkRestore(at_ns=self._now(), node_a=a, node_b=b)
        )
        self.cluster.chaos.poll()
        self._degraded.discard(pair)
        return "ok"

    def _do_blackhole(self, op: Op) -> str:
        src, dst = str(op["src"]), str(op["dst"])
        if src == dst or src in self._removed or dst in self._removed:
            return "skip"
        duration_ns = int(op["ms"]) * NS_PER_MS
        self.cluster.chaos.inject(
            RpcBlackhole(
                at_ns=self._now(), src=src, dst=dst, duration_ns=duration_ns
            )
        )
        self.cluster.chaos.poll()
        self._blackhole_until = max(
            self._blackhole_until, self._now() + duration_ns
        )
        return "ok"

    def _do_set_service_rate(self, op: Op) -> str:
        node = str(op["node"])
        if node not in self._present or node in self._crashed:
            return "skip"
        model = getattr(self.cluster.node(node).server, "overload", None)
        if model is None:
            return "skip:no-model"
        model.set_service_rate(float(int(op["rate"])))
        return "ok"

    def _do_overload_burst(self, op: Op) -> str:
        node = str(op["node"])
        if node not in self._present or node in self._crashed:
            return "skip"
        self.cluster.chaos.inject(
            OverloadBurst(
                at_ns=self._now(), node=node, backlog_ms=float(int(op["ms"]))
            )
        )
        self.cluster.chaos.poll()
        return "ok"

    def _do_add_node(self, op: Op) -> str:
        node = str(op["node"])
        if node in self.cluster.node_names() or node in self._removed:
            return "skip:exists"
        try:
            self.cluster.add_node(node)
        except ReproError as exc:
            return f"fail:{type(exc).__name__}"
        self._present.append(node)
        return "ok"

    def _do_drain(self, op: Op) -> str:
        node = str(op["node"])
        if node not in self._up():
            return "skip"
        view = self.cluster.membership.view()
        active = [
            n for n in view.names() if view.status(n) is NodeStatus.ACTIVE
        ]
        if node not in active or len(active) < 3:
            return "skip:not-enough-active"
        try:
            self.cluster.drain_node(node)
        except ReproError as exc:
            return f"fail:{type(exc).__name__}"
        return "ok"

    def _do_remove(self, op: Op) -> str:
        node = str(op["node"])
        if node not in self._present or node in self._crashed:
            return "skip"
        if len(self._up()) < 3:
            return "skip:too-few"
        view = self.cluster.membership.view()
        if node not in view.names():
            return "skip:not-member"
        if view.status(node) is NodeStatus.ACTIVE:
            return "skip:still-active"
        try:
            self.cluster.remove_node(node)
        except ReproError as exc:
            return f"fail:{type(exc).__name__}"
        self._present.remove(node)
        self._removed.add(node)
        self._drop_client(node)
        self._epochs.pop(node, None)
        self._partitions = {
            p for p in self._partitions if node not in p
        }
        self._degraded = {p for p in self._degraded if node not in p}
        return "ok"

    def _do_promote(self, op: Op) -> str:
        node = str(op["node"])
        obj = int(op["obj"])
        engine = self.cluster.tier_engine
        if engine is None:
            return "skip:no-tier"
        if node not in self._up():
            return "skip:node-down"
        try:
            result = engine.promote(ObjectID.from_int(obj), node)
        except ReproError as exc:
            return f"fail:{type(exc).__name__}"
        if result is None:
            return "skip:no-source"
        return "ok:moved" if result.moved else f"abort:{result.status}"

    def _do_demote(self, op: Op) -> str:
        obj = int(op["obj"])
        engine = self.cluster.tier_engine
        if engine is None:
            return "skip:no-tier"
        try:
            result = engine.demote(ObjectID.from_int(obj))
        except ReproError as exc:
            return f"fail:{type(exc).__name__}"
        if result is None:
            return "skip:no-dest"
        return "ok:moved" if result.moved else f"abort:{result.status}"

    def _do_scrub(self, op: Op) -> str:
        node = str(op["node"])
        if node not in self._up():
            return "skip:node-down"
        report = Scrubber(self.cluster.store(node)).run()
        return f"ok:scanned={report.scanned}:quarantined={report.quarantined}"

    def _do_rebalance(self, op: Op) -> str:
        try:
            self.cluster.rebalancer.tick()
        except ReproError as exc:
            return f"fail:{type(exc).__name__}"
        return "ok"

    def _do_health(self, op: Op) -> str:
        self.cluster.health_tick()
        return "ok"

    def _do_advance(self, op: Op) -> str:
        self.cluster.clock.advance(int(op["ms"]) * NS_PER_MS)
        self.cluster.chaos.poll()
        return "ok"

    # ------------------------------------------------------------------ checks

    def _check_epochs(self) -> None:
        for name in sorted(set(self._up())):
            store = self.cluster.store(name)
            epoch = store.topology_epoch
            last = self._epochs.get(name)
            if last is not None and epoch < last:
                self._violate(
                    "epoch-regression",
                    f"{name}: topology epoch went {last} -> {epoch}",
                )
            self._epochs[name] = epoch

    def _deep_check(self) -> None:
        primaries: dict[int, list[str]] = {}
        for name in sorted(self._up()):
            store = self.cluster.store(name)
            try:
                store.allocator.audit()
            except ReproError as exc:
                self._violate("alloc-overlap", f"{name}: audit failed: {exc}")
                return
            with store.table.lock:
                entries = list(store.table)
            expected_used = sum(e.allocation.padded_size for e in entries)
            if store.allocator.used_bytes != expected_used:
                self._violate(
                    "alloc-accounting",
                    f"{name}: allocator used={store.allocator.used_bytes} "
                    f"but table extents sum to {expected_used}",
                )
            deferred = store.deferred_retires()
            for entry in entries:
                if not entry.is_sealed or entry.quarantined:
                    continue
                reason = store.verify_object(entry)
                if reason is not None:
                    self._violate(
                        "corruption",
                        f"{name}: sealed extent fails verify: {reason}",
                    )
                    continue
                obj = self._obj_of(entry.object_id)
                if obj in self.model.sizes and entry.data_size == self.model.size(obj):
                    at_rest = bytes(
                        store.region.view(entry.payload_offset, entry.data_size)
                    )
                    if at_rest != payload_for(obj, entry.data_size):
                        self._violate(
                            "wrong-bytes",
                            f"{name}: at-rest bytes for object {obj} do not "
                            "match the generated payload",
                        )
                if entry.object_id in deferred or store.is_replica(entry.object_id):
                    continue
                primaries.setdefault(obj, []).append(name)
                if (
                    self.model.state(obj) is ObjState.DELETED_CLEAN
                    and obj not in self.model.amnesty
                ):
                    self._violate(
                        "resurrection",
                        f"{name}: live sealed extent for cleanly deleted "
                        f"object {obj}",
                    )
        for obj, holders in sorted(primaries.items()):
            if len(holders) > 1 and obj not in self.model.amnesty:
                self._violate(
                    "dup-primary",
                    f"object {obj} has sealed primary extents on "
                    f"{holders}",
                )

    # ------------------------------------------------------------------ converge

    def _settle(self, *, require_quiet: bool, max_ticks: int = 60) -> bool:
        """Tick health until breakers close (and, optionally, monitors
        report no suspects). Returns False if it never settles."""

        cluster = self.cluster
        for _ in range(max_ticks):
            cluster.health_tick()
            cluster.clock.advance(60 * NS_PER_MS)
            breakers_ok = all(
                self._breakers_closed(n) for n in sorted(self._present)
            )
            monitors_quiet = all(
                not cluster.node(n).monitor.suspects()
                for n in sorted(self._present)
                if cluster.node(n).monitor is not None
            )
            if breakers_ok and (monitors_quiet or not require_quiet):
                return True
        return False

    def _converge_and_sweep(self) -> None:
        self._op_index = len(self.steps)
        cluster = self.cluster
        now = self._now()
        for a, b in sorted(self._partitions):
            cluster.chaos.inject(LinkHeal(at_ns=now, node_a=a, node_b=b))
        for a, b in sorted(self._degraded):
            cluster.chaos.inject(LinkRestore(at_ns=now, node_a=a, node_b=b))
        cluster.chaos.poll()
        self._partitions.clear()
        self._degraded.clear()
        if self._now() < self._blackhole_until:
            cluster.clock.advance(self._blackhole_until - self._now() + NS_PER_MS)
            cluster.chaos.poll()
        for node in sorted(self._crashed):
            self._recover_one(node)
        # Overload is an operator-induced condition, not a fault the mesh
        # can heal: lift every throttle and drop injected backlog so the
        # final sweep judges a genuinely quiet cluster.
        for node in sorted(self._present):
            model = getattr(cluster.node(node).server, "overload", None)
            if model is not None:
                model.reset()
                model.set_service_rate(0.0)

        # Phase 1: drive heartbeats until every breaker closes. Reconcile
        # may still (re-)demote suspected members during this window.
        if not self._settle(require_quiet=False):
            self._violate(
                "no-breaker-convergence",
                "breakers did not close after healing all faults",
            )
            return
        # Phase 2: membership only ever demotes on its own; re-activate
        # every DOWN member now that the mesh is healthy again.
        view = cluster.membership.view()
        for node in sorted(view.names()):
            if node in self._removed or node not in self._present:
                continue
            if view.status(node) is NodeStatus.DOWN:
                self._recover_one(node)
        # Phase 3: everything should now go and stay quiet.
        if not self._settle(require_quiet=True):
            self._violate(
                "no-breaker-convergence",
                "monitors/breakers did not settle after re-activating "
                "suspected members",
            )
            return

        # Tier placements are deliberate deviations from the ring; hand
        # authority back so the sweep can hold every object to its ring
        # home (the rebalancer re-homes whatever the tier engine moved).
        if cluster.tier_engine is not None:
            cluster.tier_engine.clear_placements()
        report = cluster.rebalancer.run_until_converged()
        if not report.converged:
            self._violate(
                "no-rebalance-convergence",
                "rebalancer did not converge after healing all faults",
            )
            return
        for node in sorted(self._present):
            Scrubber(cluster.store(node)).run()
        self.steps.append("conv: healed, recovered, settled, rebalanced, scrubbed")

        self._deep_check()
        if self.violations:
            return
        self._final_sweep()

    def _final_sweep(self) -> None:
        cluster = self.cluster
        reader = sorted(self._present)[0]
        ring = cluster.placement_ring()
        for obj in self.model.objects():
            state = self.model.state(obj)
            oid = ObjectID.from_int(obj)
            if state is ObjState.LIVE:
                home = ring.home(oid)
                outcome, data = self._read(home, oid)
                if outcome != "ok":
                    self._violate(
                        "unreadable-at-home",
                        f"object {obj}: read from ring home {home} after "
                        f"convergence -> {outcome}",
                    )
                    continue
                if data != payload_for(obj, self.model.size(obj)):
                    self._violate(
                        "wrong-bytes",
                        f"object {obj}: bytes read from ring home {home} "
                        "do not match the generated payload",
                    )
                    continue
                holder = self._find_holder(oid)
                if holder != home:
                    self._violate(
                        "misplaced-after-converge",
                        f"object {obj}: primary extent on {holder!r}, ring "
                        f"home is {home!r}",
                    )
                others = [n for n in sorted(self._present) if n != home]
                if others:
                    outcome, data = self._read(others[0], oid)
                    if outcome == "ok" and data != payload_for(
                        obj, self.model.size(obj)
                    ):
                        self._violate(
                            "wrong-bytes",
                            f"object {obj}: remote read from {others[0]} "
                            "returned mismatched bytes",
                        )
                    elif outcome != "ok":
                        self._violate(
                            "unreadable-after-converge",
                            f"object {obj}: remote read from {others[0]} "
                            f"-> {outcome}",
                        )
            elif state is ObjState.DELETED_CLEAN:
                outcome, data = self._read(reader, oid)
                if outcome == "ok":
                    self._violate(
                        "resurrection",
                        f"object {obj}: readable after a clean delete "
                        "(post-convergence)",
                    )
            else:  # MAYBE / DELETED_DIRTY: bytes, if any, must be exact
                outcome, data = self._read(reader, oid)
                if outcome == "ok" and data != payload_for(
                    obj, self.model.size(obj)
                ):
                    self._violate(
                        "wrong-bytes",
                        f"object {obj}: surviving copy has mismatched bytes",
                    )
        self.steps.append(
            f"sweep: {len(self.model.objects())} objects checked"
        )


# ---------------------------------------------------------------------- entry points


def run_seed(
    seed: int,
    n_ops: int,
    *,
    mutation: str | None = None,
    profile: str = "default",
) -> RunResult:
    """Generate the trace for ``seed`` and run it."""

    ops = generate_ops(seed, n_ops, profile=profile)
    return SimulationRunner(seed, mutation=mutation).run(ops)


def replay_trace(trace: dict) -> RunResult:
    """Replay a serialized trace (see :meth:`RunResult.to_trace`)."""

    ops = [Op.from_obj(item) for item in trace["ops"]]
    runner = SimulationRunner(
        int(trace.get("seed", 0)), mutation=trace.get("mutation")
    )
    return runner.run(ops)


@dataclass
class SweepResult:
    seeds_run: int
    n_ops: int
    failures: list[RunResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        if self.ok:
            return (
                f"{self.seeds_run} seeds x {self.n_ops} ops: "
                "no invariant violations"
            )
        lines = [
            f"{self.seeds_run} seeds x {self.n_ops} ops: "
            f"{len(self.failures)} failing seed(s)"
        ]
        for result in self.failures:
            lines.append(result.report())
        return "\n".join(lines)


def run_seeds(
    n_seeds: int,
    n_ops: int,
    *,
    base_seed: int = 0,
    mutation: str | None = None,
    profile: str = "default",
    stop_on_failure: bool = False,
    progress=None,
) -> SweepResult:
    """Schedule explorer: run ``n_seeds`` independent seeded schedules."""

    sweep = SweepResult(seeds_run=0, n_ops=n_ops)
    for offset in range(n_seeds):
        seed = base_seed + offset
        result = run_seed(seed, n_ops, mutation=mutation, profile=profile)
        sweep.seeds_run += 1
        if not result.ok:
            sweep.failures.append(result)
            if stop_on_failure:
                break
        if progress is not None:
            progress(seed, result)
    return sweep
