"""Deterministic simulation testing (FoundationDB-style) for the cluster.

The whole stack runs on a simulated clock with seeded chaos, so a randomized
workload is exactly replayable from its seed. This package exploits that:

* :mod:`repro.simtest.ops` — the serializable op vocabulary a trace is
  made of (puts, gets, deletes, node lifecycle, faults, maintenance ticks).
* :mod:`repro.simtest.workload` — the seeded weighted generator that
  turns a seed into an op trace.
* :mod:`repro.simtest.model` — the sequential reference model (oracle)
  the cluster is checked against.
* :mod:`repro.simtest.harness` — the runner: applies a trace to a real
  :class:`~repro.core.cluster.Cluster`, checks invariants after every op,
  converges the cluster at the end and sweeps the oracle.
* :mod:`repro.simtest.shrink` — delta-debugging trace minimization plus
  the paste-able pytest reproducer emitter.
* :mod:`repro.simtest.mutations` — known-bug mutations for harness
  self-checks.
* :mod:`repro.simtest.selfcheck` — injects a mutation, asserts the
  harness catches it and shrinks it to a small reproducer.

Entry point: ``python -m repro simtest`` (see :mod:`repro.cli`).
"""

from repro.simtest.harness import (
    RunResult,
    SimulationRunner,
    SweepResult,
    Violation,
    replay_trace,
    run_seed,
    run_seeds,
)
from repro.simtest.ops import Op, make, ops_from_json, ops_to_json
from repro.simtest.shrink import ShrinkReport, ddmin, emit_pytest, shrink_result
from repro.simtest.selfcheck import SelfCheckReport, run_selfcheck
from repro.simtest.workload import generate_ops

__all__ = [
    "Op",
    "RunResult",
    "SelfCheckReport",
    "ShrinkReport",
    "SimulationRunner",
    "SweepResult",
    "Violation",
    "ddmin",
    "emit_pytest",
    "generate_ops",
    "make",
    "ops_from_json",
    "ops_to_json",
    "replay_trace",
    "run_seed",
    "run_seeds",
    "run_selfcheck",
    "shrink_result",
]
