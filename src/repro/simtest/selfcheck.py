"""Harness self-check: prove the oracle catches a planted bug.

Runs the sweep with a known mutation applied (default: the pre-PR2
"free without retiring the header" bug), asserts a violation is found
within the seed budget, shrinks the failing trace, and emits a runnable
pytest reproducer. If the harness ever stops catching the mutation the
self-check fails — this guards the guard.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simtest.harness import RunResult, run_seed
from repro.simtest.shrink import ShrinkReport, emit_pytest, shrink_result


@dataclass
class SelfCheckReport:
    mutation: str
    caught: bool
    seeds_tried: int
    failing: RunResult | None = None
    shrink: ShrinkReport | None = None
    pytest_source: str | None = None

    def summary(self) -> str:
        if not self.caught:
            return (
                f"self-check FAILED: mutation {self.mutation!r} not caught "
                f"in {self.seeds_tried} seeds"
            )
        assert self.failing is not None and self.shrink is not None
        violation = self.failing.violations[0]
        return (
            f"self-check OK: mutation {self.mutation!r} caught at seed "
            f"{self.failing.seed} [{violation.kind}], shrunk "
            f"{self.shrink.original_ops} -> {len(self.shrink.minimal)} ops"
        )


def run_selfcheck(
    *,
    mutation: str = "skip_retire",
    max_seeds: int = 40,
    n_ops: int = 150,
    base_seed: int = 0,
    budget: int = 400,
) -> SelfCheckReport:
    """Inject ``mutation``, scan seeds until the harness catches it, shrink."""

    failing: RunResult | None = None
    tried = 0
    for offset in range(max_seeds):
        tried += 1
        result = run_seed(base_seed + offset, n_ops, mutation=mutation)
        if not result.ok:
            failing = result
            break
    if failing is None:
        return SelfCheckReport(mutation=mutation, caught=False, seeds_tried=tried)
    report = shrink_result(failing, budget=budget)
    source = emit_pytest(report, expect="violation")
    return SelfCheckReport(
        mutation=mutation,
        caught=True,
        seeds_tried=tried,
        failing=failing,
        shrink=report,
        pytest_source=source,
    )
