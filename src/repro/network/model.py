"""Generic latency + bandwidth + jitter transfer-cost model.

The same three-parameter model underlies the LAN, IPC and fabric layers:
``cost(n) = (fixed_latency + n / bandwidth) * jitter`` with log-normal
multiplicative jitter (median 1). Each layer owns an instance with its own
calibrated parameters.
"""

from __future__ import annotations

from repro.common.clock import NS_PER_S
from repro.common.rng import DeterministicRng


class TransferModel:
    """Computes the simulated cost of moving *n* bytes."""

    def __init__(
        self,
        fixed_latency_ns: float,
        bandwidth_bps: float,
        jitter_sigma: float,
        rng: DeterministicRng,
    ):
        if fixed_latency_ns < 0:
            raise ValueError("latency cannot be negative")
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if jitter_sigma < 0:
            raise ValueError("jitter sigma cannot be negative")
        self._latency_ns = fixed_latency_ns
        self._ns_per_byte = NS_PER_S / bandwidth_bps
        self._sigma = jitter_sigma
        self._rng = rng

    @property
    def fixed_latency_ns(self) -> float:
        return self._latency_ns

    @property
    def ns_per_byte(self) -> float:
        return self._ns_per_byte

    def cost_ns(self, nbytes: int = 0) -> float:
        """Jittered cost of one transfer of *nbytes* payload bytes."""
        if nbytes < 0:
            raise ValueError("cannot transfer a negative byte count")
        base = self._latency_ns + nbytes * self._ns_per_byte
        return base * self._rng.lognormal_jitter(self._sigma)

    def expected_cost_ns(self, nbytes: int = 0) -> float:
        """Jitter-free cost (for assertions and documentation)."""
        if nbytes < 0:
            raise ValueError("cannot transfer a negative byte count")
        return self._latency_ns + nbytes * self._ns_per_byte
