"""Local-network and inter-process-communication models.

Two transports the paper relies on, both as calibrated cost models over the
shared :class:`~repro.common.clock.SimClock`:

* :class:`IpcChannel` — the Unix-domain-socket path between a Plasma client
  and its node-local store (handles are exchanged, not data).
* :class:`Network`/:class:`Connection` — the Ethernet LAN. The gRPC layer
  rides on it for metadata; the scale-out baseline copies whole objects
  over it (the Fig 1a approach the paper argues against).
"""

from repro.network.model import TransferModel
from repro.network.lan import Network, Connection
from repro.network.ipc import IpcChannel

__all__ = ["TransferModel", "Network", "Connection", "IpcChannel"]
