"""The data-centre LAN model.

Hosts register by name; any two hosts can open a :class:`Connection`.
Sends advance the cluster's :class:`~repro.common.clock.SimClock` by the
modelled transfer cost and enqueue the payload at the peer, where a
blocking ``recv`` pops it (the simulation is synchronous, so "blocking"
means raising if nothing was sent — a protocol bug, not a timing race).

The LAN is the substrate for both the gRPC layer (metadata) and the
scale-out baseline (bulk object copies, Fig 1a).
"""

from __future__ import annotations

from collections import deque

from repro.common.clock import SimClock
from repro.common.config import LanConfig
from repro.common.errors import ConnectionClosedError, NetworkError
from repro.common.rng import DeterministicRng
from repro.obs.metrics import CounterGroup
from repro.network.model import TransferModel


class Network:
    """A named-host LAN with uniform per-pair characteristics."""

    def __init__(self, clock: SimClock, config: LanConfig, rng: DeterministicRng):
        self._clock = clock
        self._config = config
        self._rng = rng.spawn("lan")
        self._hosts: set[str] = set()
        self._model = TransferModel(
            fixed_latency_ns=config.round_trip_ns / 2.0,
            bandwidth_bps=config.bandwidth_bps,
            jitter_sigma=config.jitter_sigma,
            rng=self._rng,
        )
        self.counters = CounterGroup()
        # Fault-injection hook (repro.chaos): while a partition covers a
        # host pair, sends between them fail instead of being charged.
        self.chaos = None  # ChaosRuntime, set by attach_network()

    @property
    def clock(self) -> SimClock:
        return self._clock

    @property
    def config(self) -> LanConfig:
        return self._config

    def register_host(self, name: str) -> None:
        if name in self._hosts:
            raise NetworkError(f"host {name!r} already registered")
        self._hosts.add(name)

    def hosts(self) -> set[str]:
        return set(self._hosts)

    def connect(self, local: str, remote: str) -> "Connection":
        """Open a bidirectional connection between two registered hosts."""
        for h in (local, remote):
            if h not in self._hosts:
                raise NetworkError(f"unknown host {h!r}")
        if local == remote:
            raise NetworkError("connecting a host to itself is not meaningful")
        a_to_b: deque[bytes] = deque()
        b_to_a: deque[bytes] = deque()
        conn_a = Connection(self, local, remote, send_q=a_to_b, recv_q=b_to_a)
        conn_b = Connection(self, remote, local, send_q=b_to_a, recv_q=a_to_b)
        conn_a._peer = conn_b
        conn_b._peer = conn_a
        return conn_a

    def _gate(self, local: str, remote: str) -> None:
        if self.chaos is None:
            return
        self.chaos.poll()
        if self.chaos.partitioned(local, remote):
            self.counters.inc("partition_drops")
            raise NetworkError(f"LAN path {local}<->{remote} is partitioned")

    def _charge_transfer(self, nbytes: int) -> None:
        self._clock.advance(self._model.cost_ns(nbytes))
        self.counters.inc("bytes_transferred", nbytes)
        self.counters.inc("messages", 1)


class Connection:
    """One endpoint of a LAN byte-message connection."""

    def __init__(
        self,
        network: Network,
        local: str,
        remote: str,
        send_q: deque,
        recv_q: deque,
    ):
        self._network = network
        self._local = local
        self._remote = remote
        self._send_q = send_q
        self._recv_q = recv_q
        self._peer: "Connection | None" = None
        self._closed = False
        self.bytes_sent = 0
        self.bytes_received = 0

    @property
    def local(self) -> str:
        return self._local

    @property
    def remote(self) -> str:
        return self._remote

    @property
    def peer(self) -> "Connection":
        assert self._peer is not None
        return self._peer

    @property
    def closed(self) -> bool:
        return self._closed

    def send(self, payload: bytes) -> None:
        """Transmit *payload*; charges the LAN model for its size."""
        if self._closed or (self._peer and self._peer._closed):
            raise ConnectionClosedError(
                f"connection {self._local}->{self._remote} is closed"
            )
        data = bytes(payload)
        self._network._gate(self._local, self._remote)
        self._network._charge_transfer(len(data))
        self._send_q.append(data)
        self.bytes_sent += len(data)

    def recv(self) -> bytes:
        """Pop the next pending message (raises if none — in the synchronous
        simulation an empty queue means a protocol error, not a wait)."""
        if not self._recv_q:
            if self._closed or (self._peer and self._peer._closed):
                raise ConnectionClosedError(
                    f"connection {self._local}->{self._remote} is closed"
                )
            raise NetworkError(
                f"recv on {self._local}<-{self._remote} with no pending message"
            )
        data = self._recv_q.popleft()
        self.bytes_received += len(data)
        return data

    def pending(self) -> int:
        return len(self._recv_q)

    def close(self) -> None:
        self._closed = True
