"""Unix-domain-socket IPC between a Plasma client and its local store.

Plasma's protocol passes object *handles* (file descriptors plus offsets)
over the socket, never object payloads, so the cost model is dominated by a
per-request overhead plus a per-object marshalling term. Those two
parameters are fitted directly from Fig 6's local series
(see :class:`~repro.common.config.IpcConfig`).
"""

from __future__ import annotations

from repro.common.clock import SimClock
from repro.common.config import IpcConfig
from repro.common.rng import DeterministicRng
from repro.obs.metrics import CounterGroup


class IpcChannel:
    """Models the store<->client socket on one node.

    ``charge_request(nobjects, nbytes)`` advances the clock by the cost of
    one request/response round trip carrying *nobjects* handles and
    *nbytes* of inline metadata.
    """

    def __init__(self, clock: SimClock, config: IpcConfig, rng: DeterministicRng):
        self._clock = clock
        self._config = config
        self._rng = rng.spawn("ipc")
        self.counters = CounterGroup()

    @property
    def config(self) -> IpcConfig:
        return self._config

    def charge_request(self, nobjects: int = 0, nbytes: int = 0) -> float:
        """One IPC round trip; returns the charged nanoseconds."""
        if nobjects < 0 or nbytes < 0:
            raise ValueError("negative request size")
        cost = (
            self._config.request_overhead_ns
            + nobjects * self._config.per_object_ns
            + nbytes * self._config.per_byte_ns
        )
        cost *= self._rng.lognormal_jitter(self._config.jitter_sigma)
        self._clock.advance(cost)
        self.counters.inc("requests")
        self.counters.inc("objects_referenced", nobjects)
        return cost
