"""The per-node hot-object byte cache.

A bounded slab of this node's own DRAM holding *payload copies* of remote
objects, so a repeat read of a hot key costs a local-memory copy instead of
a ThymesisFlow stream. Two mechanisms keep it honest:

* **Coherence by generation keying** — entries are keyed by
  ``(object id, generation)``, the same generation the in-region integrity
  header carries (PR 2). Any event that retires an incarnation — delete,
  eviction, migration, quarantine — bumps the generation, so a refreshed
  descriptor simply misses the cache. Explicit invalidation (NotifyDeleted
  pushes, topology-epoch installs, peer disconnects) reclaims the bytes
  eagerly; generation keying is the backstop that makes a *missed*
  invalidation a stale-miss rather than a stale-hit.
* **Admission by frequency** — a TinyLFU-style count-min sketch estimates
  each object's access frequency; under capacity pressure a candidate only
  displaces the LRU victim if the sketch says it is accessed more often.
  One-hit wonders never wash the hot set out of the cache.

All hashing is seeded and process-stable (crc32 over salted ids), so runs
are byte-reproducible.
"""

from __future__ import annotations

import zlib
from collections import OrderedDict

from repro.common.ids import ObjectID
from repro.common.rng import derive_seed


class FrequencySketch:
    """A seeded count-min sketch with 4-bit saturating counters and
    periodic halving (the TinyLFU "reset" that ages history away).

    ``width`` buckets per row, ``depth`` independent rows; the estimate is
    the minimum over rows. Counters saturate at 15; once the total number
    of increments reaches ``10 * width`` every counter is halved, so the
    sketch tracks *recent* frequency, not all-time counts.
    """

    _SATURATION = 15

    def __init__(self, width: int, depth: int, seed: int = 0):
        if width <= 0 or depth <= 0:
            raise ValueError("sketch width and depth must be positive")
        self._width = int(width)
        self._rows = [bytearray(self._width) for _ in range(int(depth))]
        self._salts = [
            derive_seed(seed, f"sketch-row-{i}").to_bytes(8, "big")
            for i in range(int(depth))
        ]
        self._sample_size = 10 * self._width
        self._increments = 0

    def _index(self, key: bytes, row: int) -> int:
        return zlib.crc32(key + self._salts[row]) % self._width

    def increment(self, key: bytes) -> None:
        for row, counters in enumerate(self._rows):
            slot = self._index(key, row)
            if counters[slot] < self._SATURATION:
                counters[slot] += 1
        self._increments += 1
        if self._increments >= self._sample_size:
            self._age()

    def estimate(self, key: bytes) -> int:
        return min(
            counters[self._index(key, row)]
            for row, counters in enumerate(self._rows)
        )

    def _age(self) -> None:
        for counters in self._rows:
            for slot in range(self._width):
                counters[slot] >>= 1
        self._increments //= 2


class HotObjectCache:
    """Bounded byte cache of remote-object payloads, LRU-ordered with
    sketch-gated admission. Not thread-aware by design: each node's store
    serialises its own data path, exactly like the lookup cache."""

    def __init__(
        self,
        capacity_bytes: int,
        *,
        sketch_width: int = 512,
        sketch_depth: int = 4,
        seed: int = 0,
    ):
        if capacity_bytes <= 0:
            raise ValueError("cache capacity must be positive")
        self._capacity = int(capacity_bytes)
        self._sketch = FrequencySketch(sketch_width, sketch_depth, seed)
        # (oid bytes, generation) -> (payload bytes, home store name),
        # ordered least- to most-recently used.
        self._entries: OrderedDict[tuple[bytes, int], tuple[bytes, str]] = (
            OrderedDict()
        )
        self._by_oid: dict[bytes, set[int]] = {}
        self._used = 0
        # Counters surfaced through the metrics plane and BENCH artifacts.
        self.hits = 0
        self.misses = 0
        self.admissions = 0
        self.rejections = 0
        self.evictions = 0
        self.invalidations = 0
        self.bytes_avoided = 0
        # Debug hook for the simtest coherence oracle: the (oid, generation,
        # home) of the most recent hit, cleared by the harness after judging.
        self.last_served: tuple[ObjectID, int, str] | None = None

    # -- introspection -----------------------------------------------------------

    @property
    def capacity_bytes(self) -> int:
        return self._capacity

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._entries)

    def contains(self, object_id: ObjectID, generation: int) -> bool:
        return (object_id.binary(), generation) in self._entries

    # -- the data path ------------------------------------------------------------

    def record_access(self, object_id: ObjectID) -> None:
        """Feed the admission sketch (called once per remote get, whether
        or not the read later hits)."""
        self._sketch.increment(object_id.binary())

    def lookup(self, object_id: ObjectID, generation: int) -> bytes | None:
        """The cached payload for this exact incarnation, or None. A hit
        refreshes LRU recency and is counted with the fabric bytes it
        avoided; a miss only counts."""
        key = (object_id.binary(), generation)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        payload, home = entry
        self.hits += 1
        self.bytes_avoided += len(payload)
        self.last_served = (object_id, generation, home)
        return payload

    def lookup_any(self, object_id: ObjectID) -> tuple[int, bytes, str] | None:
        """The newest cached incarnation of *object_id* regardless of
        generation: ``(generation, payload, home)`` or None.

        This is the pre-resolution fast path — serving it skips the home's
        AddRef/ReleaseRef round trips entirely, which is only sound while
        delete/evict invalidations are *pushed* to every peer (the store
        gates the call on ``notify_deletions``). A hit counts and
        refreshes recency exactly like :meth:`lookup`; an absent id is NOT
        counted as a miss, because the caller falls through to the
        resolving path whose generation-keyed probe counts it there.
        """
        oid = object_id.binary()
        gens = self._by_oid.get(oid)
        if not gens:
            return None
        generation = max(gens)
        key = (oid, generation)
        payload, home = self._entries[key]
        self._entries.move_to_end(key)
        self.hits += 1
        self.bytes_avoided += len(payload)
        self.last_served = (object_id, generation, home)
        return generation, payload, home

    def offer(
        self, object_id: ObjectID, generation: int, payload: bytes, home: str
    ) -> bool:
        """Consider caching *payload* (a full validated fabric read).

        Admission: an oversized payload is refused outright; otherwise LRU
        victims are displaced only while the sketch estimates the candidate
        is accessed at least as often as the victim — else the candidate is
        rejected and the resident hot set survives.
        """
        key = (object_id.binary(), generation)
        if key in self._entries:
            self._entries.move_to_end(key)
            return True
        # A newer incarnation supersedes any cached older ones: they can
        # never be the max lookup_any serves again, and an exact-generation
        # probe always asks for the current descriptor's generation — so
        # they are dead bytes. Dropping them first also keeps them from
        # forcing innocent evictions in the victim contest below.
        gens = self._by_oid.get(key[0])
        if gens:
            for old in sorted(g for g in gens if g < generation):
                self._drop((key[0], old))
                self.invalidations += 1
        size = len(payload)
        if size > self._capacity:
            self.rejections += 1
            return False
        candidate_freq = self._sketch.estimate(key[0])
        while self._used + size > self._capacity:
            victim_key, (victim_payload, _) = next(iter(self._entries.items()))
            if candidate_freq < self._sketch.estimate(victim_key[0]):
                self.rejections += 1
                return False
            self._drop(victim_key)
            self.evictions += 1
        self._entries[key] = (bytes(payload), home)
        self._by_oid.setdefault(key[0], set()).add(generation)
        self._used += size
        self.admissions += 1
        return True

    # -- invalidation channels ----------------------------------------------------

    def _drop(self, key: tuple[bytes, int]) -> None:
        payload, _ = self._entries.pop(key)
        self._used -= len(payload)
        gens = self._by_oid.get(key[0])
        if gens is not None:
            gens.discard(key[1])
            if not gens:
                del self._by_oid[key[0]]

    def invalidate(self, object_id: ObjectID) -> int:
        """Drop every cached incarnation of *object_id* (NotifyDeleted
        push, or a read that proved the descriptor stale)."""
        oid = object_id.binary()
        gens = self._by_oid.get(oid)
        if not gens:
            return 0
        dropped = 0
        for generation in sorted(gens):
            self._drop((oid, generation))
            dropped += 1
        self.invalidations += dropped
        return dropped

    def invalidate_home(self, home: str) -> int:
        """Drop every entry whose payload came from *home* (the peer left
        the cluster; nothing it served can be trusted forward)."""
        stale = [key for key, (_, h) in self._entries.items() if h == home]
        for key in stale:
            self._drop(key)
        self.invalidations += len(stale)
        return len(stale)

    def clear(self) -> int:
        """Full purge (topology-epoch install or local restart recovery)."""
        dropped = len(self._entries)
        self._entries.clear()
        self._by_oid.clear()
        self._used = 0
        self.invalidations += dropped
        return dropped
