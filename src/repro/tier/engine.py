"""The promotion/demotion engine between local and far tiers.

Replaces evict-to-delete as the answer to capacity pressure: instead of a
cold sealed object dying at its home, the tier engine *demotes* it — a
two-phase pull migration to a capacity-rich remote node — and *promotes*
hot remotely-read objects to the node doing the reading. Decisions come
from the per-node :class:`~repro.tier.heat.HeatTracker`s; execution reuses
the :class:`~repro.placement.migrate.MigrationEngine` unchanged, so every
tier move inherits migration's crash safety and reader-visible atomicity.

Like the Rebalancer, the engine runs as byte-budgeted discrete-event ticks
on the simulated clock. Tier-placed objects are recorded in a registry the
Rebalancer consults: a demoted object is *deliberately* away from its ring
home, and the two engines must not fight over it. Clearing the registry
(`clear_placements`) returns authority to the ring — the simtest harness
does exactly that before its final converge-and-sweep oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.ids import ObjectID
from repro.obs.metrics import CounterGroup
from repro.placement.membership import NodeStatus


@dataclass(frozen=True)
class TierTickReport:
    """What one tier-engine tick did."""

    promoted_objects: int
    promoted_bytes: int
    demoted_objects: int
    demoted_bytes: int
    aborted: int
    retired: int


@dataclass(frozen=True)
class TierConvergenceReport:
    ticks: int
    promoted_objects: int
    promoted_bytes: int
    demoted_objects: int
    demoted_bytes: int
    converged: bool
    tick_reports: tuple[TierTickReport, ...] = field(default=())

    def describe(self) -> str:
        state = "converged" if self.converged else "NOT converged"
        return (
            f"{state} after {self.ticks} tick(s): "
            f"{self.promoted_objects} promoted "
            f"({self.promoted_bytes} B), {self.demoted_objects} demoted "
            f"({self.demoted_bytes} B)"
        )


class TierEngine:
    """Heat-driven, byte-budgeted promotion/demotion over the cluster."""

    def __init__(self, cluster, engine, agents: dict, config):
        if config.bytes_per_tick <= 0:
            raise ValueError("bytes_per_tick must be positive")
        if config.tick_interval_ns < 0:
            raise ValueError("tick_interval_ns must be non-negative")
        self._cluster = cluster
        self._engine = engine
        self._agents = agents
        self._cfg = config
        self._bytes_per_tick = int(config.bytes_per_tick)
        self._tick_interval_ns = float(config.tick_interval_ns)
        # Objects the tier engine deliberately placed off their ring home
        # (demotions) or onto a reader (promotions): oid -> intended node.
        self._placed: dict[ObjectID, str] = {}
        self.counters = CounterGroup()

    def attach_metrics(self, registry) -> None:
        if not getattr(registry, "enabled", True):
            return
        registry.register_group(self.counters, "tier")

    # -- registry (the Rebalancer consults this) ---------------------------------

    def is_tier_placed(self, object_id: ObjectID) -> bool:
        return object_id in self._placed

    def placements(self) -> dict[ObjectID, str]:
        return dict(self._placed)

    def clear_placements(self) -> int:
        """Hand every tier-placed object back to the ring (the rebalancer
        will re-home them on its next ticks)."""
        cleared = len(self._placed)
        self._placed.clear()
        return cleared

    def agent(self, node: str):
        return self._agents[node]

    # -- plan computation ---------------------------------------------------------

    def _view(self):
        return self._cluster.membership.view()

    def _active_names(self) -> list[str]:
        view = self._view()
        return [
            name
            for name in sorted(self._cluster.node_names())
            if name in view.names() and view.status(name) is NodeStatus.ACTIVE
        ]

    def _source_names(self) -> list[str]:
        view = self._view()
        return [
            name
            for name in sorted(self._cluster.node_names())
            if name in view.names()
            and view.status(name) in (NodeStatus.ACTIVE, NodeStatus.DRAINING)
        ]

    def _holder_of(self, object_id: ObjectID) -> tuple[str, int] | None:
        """``(node, data_size)`` of the sealed primary copy, or None."""
        for name in self._source_names():
            store = self._cluster.store(name)
            with store.table.lock:
                entry = store.table.lookup(object_id)
                if entry is None or not entry.is_sealed or entry.quarantined:
                    continue
                size = entry.data_size
            if store.is_replica(object_id):
                continue
            return name, size
        return None

    def _has_room(self, node: str, size: int) -> bool:
        store = self._cluster.store(node)
        limit = self._cfg.demote_watermark * store.capacity_bytes
        return store.used_bytes + size <= limit

    def promotion_plan(self) -> list[tuple[str, ObjectID, int]]:
        """``(dest_node, object_id, size)`` for every remote object some
        node reads hotly enough to deserve a local copy, hottest first per
        node, nodes in name order."""
        plan: list[tuple[str, ObjectID, int]] = []
        for node in self._active_names():
            agent = self._agents[node]
            for oid, heat in agent.remote_heat.hottest():
                if heat < self._cfg.promote_min_heat:
                    break  # hottest() is sorted; the rest are colder
                holder = self._holder_of(oid)
                if holder is None or holder[0] == node:
                    continue
                if not self._has_room(node, holder[1]):
                    continue
                plan.append((node, oid, holder[1]))
        return plan

    def _demotion_dest(self, source: str, size: int) -> str | None:
        """The ACTIVE node with the most free capacity that can absorb
        *size* bytes without itself crossing the watermark."""
        best: tuple[int, str] | None = None
        for name in self._active_names():
            if name == source:
                continue
            store = self._cluster.store(name)
            free = store.capacity_bytes - store.used_bytes
            if free < size or not self._has_room(name, size):
                continue
            if best is None or (free, name) > (best[0], best[1]):
                # Larger free space wins; name breaks exact ties the same
                # way every run.
                best = (free, name)
        return best[1] if best is not None else None

    def demotion_plan(self) -> list[tuple[str, ObjectID, int]]:
        """``(holder, object_id, size)`` of the coldest sealed unreferenced
        primaries on every node above the demote watermark — enough of
        them to bring the node back to the target utilisation."""
        plan: list[tuple[str, ObjectID, int]] = []
        for node in self._active_names():
            store = self._cluster.store(node)
            cap = store.capacity_bytes
            if store.used_bytes <= self._cfg.demote_watermark * cap:
                continue
            shed = store.used_bytes - int(self._cfg.demote_target * cap)
            agent = self._agents[node]
            with store.table.lock:
                candidates = [
                    (entry.object_id, entry.data_size)
                    for entry in store.table
                    if entry.is_sealed
                    and not entry.quarantined
                    and entry.total_refs == 0
                ]
            candidates = [
                (oid, size)
                for oid, size in candidates
                if not store.is_replica(oid)
            ]
            candidates.sort(key=lambda c: (agent.local_heat.heat(c[0]), c[0]))
            taken = 0
            for oid, size in candidates:
                if taken >= shed:
                    break
                plan.append((node, oid, size))
                taken += size
        return plan

    # -- execution ---------------------------------------------------------------

    def _record_placement(self, object_id: ObjectID, dest: str) -> None:
        self._placed[object_id] = dest

    def promote(self, object_id: ObjectID, dest: str):
        """Single targeted promotion (the simtest ``promote`` op); returns
        the MigrationResult, or None when there is nothing to move."""
        holder = self._holder_of(object_id)
        if holder is None or holder[0] == dest:
            return None
        view = self._view()
        if dest not in view.names() or view.status(dest) is not NodeStatus.ACTIVE:
            return None
        result = self._engine.migrate(
            self._cluster.store(holder[0]), dest, object_id, reason="promote"
        )
        if result.moved:
            self._record_placement(object_id, dest)
            self._agents[dest].on_promoted_home(object_id)
            self.counters.inc("promotions")
            self.counters.inc("promotion_bytes", result.bytes_moved)
        else:
            self.counters.inc("tier_aborts")
        return result

    def demote(self, object_id: ObjectID):
        """Single targeted demotion to the most-free node (the simtest
        ``demote`` op); returns the MigrationResult or None."""
        holder = self._holder_of(object_id)
        if holder is None:
            return None
        dest = self._demotion_dest(holder[0], holder[1])
        if dest is None:
            return None
        result = self._engine.migrate(
            self._cluster.store(holder[0]), dest, object_id, reason="demote"
        )
        if result.moved:
            self._record_placement(object_id, dest)
            self.counters.inc("demotions")
            self.counters.inc("demotion_bytes", result.bytes_moved)
        else:
            self.counters.inc("tier_aborts")
        return result

    def _prune_placements(self) -> None:
        """Drop registry entries whose object no longer lives (as a
        primary) where the tier engine put it — deleted, re-migrated, or
        the node left the cluster. The ring regains authority over them."""
        nodes = set(self._cluster.node_names())
        for oid, dest in list(self._placed.items()):
            if dest not in nodes:
                del self._placed[oid]
                continue
            store = self._cluster.store(dest)
            with store.table.lock:
                entry = store.table.lookup(oid)
                gone = entry is None or not entry.is_sealed
            if gone or store.is_replica(oid):
                del self._placed[oid]

    def tick(self) -> TierTickReport:
        """One budgeted promotion+demotion round; advances the sim clock
        once. Promotions spend the byte budget first — serving hot readers
        beats making room."""
        retired = 0
        for name in self._source_names():
            retired += self._cluster.store(name).flush_deferred_retires()
        spent = 0
        promoted = promoted_bytes = demoted = demoted_bytes = aborted = 0
        for dest, oid, size in self.promotion_plan():
            if spent >= self._bytes_per_tick:
                break
            result = self.promote(oid, dest)
            if result is None:
                continue
            if result.moved:
                promoted += 1
                promoted_bytes += result.bytes_moved
                spent += size
            else:
                aborted += 1
        for holder, oid, size in self.demotion_plan():
            if spent >= self._bytes_per_tick:
                break
            result = self.demote(oid)
            if result is None:
                continue
            if result.moved:
                demoted += 1
                demoted_bytes += result.bytes_moved
                spent += size
            else:
                aborted += 1
        self._prune_placements()
        self.counters.inc("ticks")
        if self._tick_interval_ns:
            self._cluster.clock.advance(self._tick_interval_ns)
        return TierTickReport(
            promoted_objects=promoted,
            promoted_bytes=promoted_bytes,
            demoted_objects=demoted,
            demoted_bytes=demoted_bytes,
            aborted=aborted,
            retired=retired,
        )

    def run_until_converged(
        self, *, max_ticks: int = 10_000, keep_reports: bool = False
    ) -> TierConvergenceReport:
        """Tick until no promotion or demotion is wanted (heat decays on
        the advancing clock, so promotion pressure drains by itself), or
        until three consecutive ticks make no progress."""
        promoted = promoted_bytes = demoted = demoted_bytes = 0
        reports: list[TierTickReport] = []
        ticks = 0
        stalled = 0
        while ticks < max_ticks:
            if not self.promotion_plan() and not self.demotion_plan():
                break
            report = self.tick()
            ticks += 1
            promoted += report.promoted_objects
            promoted_bytes += report.promoted_bytes
            demoted += report.demoted_objects
            demoted_bytes += report.demoted_bytes
            if keep_reports:
                reports.append(report)
            if (
                report.promoted_objects == 0
                and report.demoted_objects == 0
                and report.retired == 0
            ):
                stalled += 1
                if stalled >= 3:
                    break
            else:
                stalled = 0
        converged = not self.promotion_plan() and not self.demotion_plan()
        return TierConvergenceReport(
            ticks=ticks,
            promoted_objects=promoted,
            promoted_bytes=promoted_bytes,
            demoted_objects=demoted,
            demoted_bytes=demoted_bytes,
            converged=converged,
            tick_reports=tuple(reports),
        )
