"""Per-node tiering state: one agent per store.

The agent owns everything tiering keeps on a node — the hot-object byte
cache, the two heat trackers (remote reads feed promotion, local reads
protect against demotion), and the local-DRAM cost model a cache hit is
charged with. The store branches on ``self._tier is None`` so a cluster
built without tiering pays nothing, not even an attribute lookup per read.
"""

from __future__ import annotations

from repro.common.clock import SimClock
from repro.common.ids import ObjectID
from repro.common.rng import DeterministicRng
from repro.network.model import TransferModel
from repro.tier.cache import HotObjectCache
from repro.tier.heat import HeatTracker


class TierAgent:
    """One node's view of the tiering plane."""

    def __init__(self, node: str, config, clock: SimClock, rng: DeterministicRng):
        self.node = node
        self.config = config
        self.cache: HotObjectCache | None = None
        if config.cache_capacity_bytes > 0:
            self.cache = HotObjectCache(
                config.cache_capacity_bytes,
                sketch_width=config.sketch_width,
                sketch_depth=config.sketch_depth,
                seed=rng.spawn("sketch").seed,
            )
        self.remote_heat = HeatTracker(
            clock,
            half_life_ns=config.heat_half_life_ns,
            sample_rate=config.heat_sample_rate,
            rng=rng.spawn("remote-heat"),
        )
        self.local_heat = HeatTracker(
            clock,
            half_life_ns=config.heat_half_life_ns,
            sample_rate=config.heat_sample_rate,
            rng=rng.spawn("local-heat"),
        )
        # A cache hit is a local DRAM copy: same shape as the endpoint's
        # local-read model, with its own jitter stream so enabling the
        # cache never perturbs fabric or endpoint draws.
        self.hit_cost = TransferModel(
            config.cache_hit_latency_ns,
            config.cache_hit_bandwidth_bps,
            config.cache_hit_jitter_sigma,
            rng.spawn("hit-jitter"),
        )
        # Outstanding references on cache-served buffers, by oid bytes.
        # Those buffers reference no table entry and no remote record, so
        # the store routes their releases here. Deliberately NOT cleared
        # by reset(): handles held across a restart must still release.
        self._served_refs: dict[bytes, int] = {}

    # -- access notifications (store data path) ----------------------------------

    def note_local_get(self, object_id: ObjectID) -> None:
        self.local_heat.record(object_id)

    def note_remote_get(self, object_id: ObjectID) -> None:
        self.remote_heat.record(object_id)
        if self.cache is not None:
            self.cache.record_access(object_id)

    # -- the pre-resolution fast path ---------------------------------------------

    def serve_cached(self, object_id: ObjectID) -> tuple[int, bytes, str] | None:
        """``(generation, payload, home)`` if the cache can answer this get
        without resolving the object at all, else None. The store gates the
        call on push invalidation being enabled (see HotObjectCache.lookup_any)."""
        if self.cache is None:
            return None
        return self.cache.lookup_any(object_id)

    def note_served(self, object_id: ObjectID) -> None:
        oid = object_id.binary()
        self._served_refs[oid] = self._served_refs.get(oid, 0) + 1

    def release_served(self, object_id: ObjectID) -> bool:
        """Consume one cache-served reference; False if none outstanding
        (the release belongs to a table or remote-record reference)."""
        oid = object_id.binary()
        count = self._served_refs.get(oid)
        if not count:
            return False
        if count == 1:
            del self._served_refs[oid]
        else:
            self._served_refs[oid] = count - 1
        return True

    # -- lifecycle ----------------------------------------------------------------

    def on_promoted_home(self, object_id: ObjectID) -> None:
        """The object now lives on this node; its remote heat is history
        (local accesses keep it warm from here on)."""
        self.remote_heat.forget(object_id)

    def reset(self) -> None:
        """Restart recovery: the store process died, and the cache and heat
        state died with it (they are process DRAM, not exposed memory)."""
        if self.cache is not None:
            self.cache.clear()
        self.remote_heat.clear()
        self.local_heat.clear()

    def stats(self) -> dict:
        """Deterministic snapshot for BENCH artifacts and Stats RPCs."""
        out = {
            "node": self.node,
            "remote_tracked": len(self.remote_heat),
            "local_tracked": len(self.local_heat),
        }
        if self.cache is not None:
            out["cache"] = {
                "capacity_bytes": self.cache.capacity_bytes,
                "used_bytes": self.cache.used_bytes,
                "entries": len(self.cache),
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "hit_rate": self.cache.hit_rate,
                "admissions": self.cache.admissions,
                "rejections": self.cache.rejections,
                "evictions": self.cache.evictions,
                "invalidations": self.cache.invalidations,
                "bytes_avoided": self.cache.bytes_avoided,
            }
        return out
