"""The cache-aware remote buffer source.

Wraps a :class:`~repro.plasma.buffer.RemoteBufferSource`: a materialising
read first probes the node's :class:`~repro.tier.cache.HotObjectCache` by
``(object id, generation)``. A hit serves the bytes from local DRAM —
charged through the agent's local-copy cost model, attributed to the
``cache`` span component, and counted on the fabric link as avoided read
bytes. A miss delegates to the wrapped source's *validated* fabric read
and, when the read materialised the whole payload, offers the bytes to the
cache keyed by the generation the validation just proved.

Filling only after a validated read is the coherence linchpin: the header
check before the copy and the generation re-check after it guarantee the
cached bytes are exactly the payload of that (id, generation) incarnation,
and generations never repeat — so a cache entry can only ever be *stale*,
never *wrong*, and staleness is handled by the invalidation channels plus
generation keying at lookup time.
"""

from __future__ import annotations

from repro.common.errors import ObjectStoreError
from repro.plasma.buffer import RemoteBufferSource, RemoteReadIntegrity


class CachedBufferSource:
    """A buffer source over a cache-resident payload copy.

    Backs the *pre-resolution* fast path: the store answered a get straight
    from the hot-object cache, so there is no remote record, no home-side
    pin, and no fabric mapping behind this source — just the bytes. Reads
    are charged through the agent's local-copy cost model under the
    ``cache`` span component and credited to the home link as avoided
    fabric traffic; the payload is immutable (sealed), so writes are a
    programming error.
    """

    def __init__(self, payload: bytes, home: str, agent, store, link):
        self._payload = payload
        self._home = home
        self._agent = agent
        self._store = store
        self._link = link  # None when the home peer is no longer mapped

    @property
    def location(self) -> str:
        return f"{self._home} (cached at {self._agent.node})"

    @property
    def is_remote(self) -> bool:
        # The object lives remotely; only this copy of its bytes is local.
        # True keeps client-side correlation stamping identical to the
        # resolving path, so deferred reads attribute to their Get.
        return True

    @property
    def integrity(self) -> RemoteReadIntegrity | None:
        return None  # the payload was validated when it was cached

    def view(self, offset: int, size: int):
        return memoryview(self._payload)[offset : offset + size]

    def timed_read(self, offset: int, size: int, out=None) -> float:
        cost_ns = self._agent.hit_cost.cost_ns(size)
        spans = self._store.spans
        if spans is not None:
            with spans.span(
                "cache", "hit", node=self._store.node, nbytes=size
            ):
                self._store.clock.advance(cost_ns)
        else:
            self._store.clock.advance(cost_ns)
        if self._link is not None:
            # The fabric stream this serve replaced would have carried the
            # payload plus the validation header.
            self._link.note_read_avoided(size + self._store.header_size)
        if out is not None:
            mv = memoryview(out)
            if mv.ndim != 1 or mv.itemsize != 1:
                mv = mv.cast("B")
            mv[:size] = self._payload[offset : offset + size]
        return 0.0

    def timed_write(self, offset: int, data) -> float:
        raise ObjectStoreError("cache-served buffers are read-only")

    def charge_write(self, offset: int, size: int) -> float:
        raise ObjectStoreError("cache-served buffers are read-only")


class TierBufferSource:
    """A RemoteBufferSource with a hot-object byte cache in front."""

    def __init__(self, inner: RemoteBufferSource, record, remote_region, agent, store):
        self._inner = inner
        self._record = record
        self._region = remote_region
        self._agent = agent
        self._store = store

    # -- delegation ---------------------------------------------------------------

    @property
    def location(self) -> str:
        return self._inner.location

    @property
    def is_remote(self) -> bool:
        return True

    @property
    def integrity(self) -> RemoteReadIntegrity | None:
        return self._inner.integrity

    def view(self, offset: int, size: int):
        return self._inner.view(offset, size)

    def timed_write(self, offset: int, data) -> float:
        return self._inner.timed_write(offset, data)

    def charge_write(self, offset: int, size: int) -> float:
        return self._inner.charge_write(offset, size)

    # -- the cached read path -----------------------------------------------------

    def _generation(self) -> int:
        # The integrity context is live — a stale-descriptor refresh swaps
        # it for the fresh incarnation's — so it, not the captured record,
        # is the authority on which generation the bytes belong to.
        ig = self._inner.integrity
        return ig.generation if ig is not None else self._record.generation

    def _header_size(self) -> int:
        ig = self._inner.integrity
        return ig.header_size if ig is not None else 0

    def timed_read(self, offset: int, size: int, out=None) -> float:
        cache = self._agent.cache
        generation = self._generation()
        if cache is None or not generation:
            # Generation 0 means "unknown incarnation" (hashmap directory
            # descriptors): uncacheable, since a hit could never be proven
            # coherent. Straight to the fabric.
            return self._inner.timed_read(offset, size, out=out)
        object_id = self._record.object_id
        payload = cache.lookup(object_id, generation)
        if payload is not None:
            cost_ns = self._agent.hit_cost.cost_ns(size)
            spans = self._store.spans
            if spans is not None:
                with spans.span(
                    "cache", "hit", node=self._store.node, nbytes=size
                ):
                    self._store.clock.advance(cost_ns)
            else:
                self._store.clock.advance(cost_ns)
            # The fabric stream this hit replaced would have carried the
            # payload plus the validation header.
            self._region.aperture.link.note_read_avoided(
                size + self._header_size()
            )
            if out is not None:
                mv = memoryview(out)
                if mv.ndim != 1 or mv.itemsize != 1:
                    mv = mv.cast("B")
                mv[:size] = payload[offset : offset + size]
            return 0.0
        cost = self._inner.timed_read(offset, size, out=out)
        if out is not None and offset == 0 and size == self._record.data_size:
            generation = self._generation()  # may have refreshed mid-read
            if generation:
                mv = memoryview(out)
                if mv.ndim != 1 or mv.itemsize != 1:
                    mv = mv.cast("B")
                cache.offer(
                    object_id,
                    generation,
                    bytes(mv[:size]),
                    home=self._record.home,
                )
        return cost
