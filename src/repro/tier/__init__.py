"""Tiered memory: per-node hot-object caching + local/far promotion.

The fabric makes every remote byte ~11.5 % slower and every first touch
~1.1 µs away; ``repro.tier`` closes that gap the way production
memory-disaggregation stacks do (Maruf & Chowdhury, "Memory Disaggregation:
Advances and Open Challenges"):

* :class:`HotObjectCache` — a bounded per-node DRAM byte cache in front of
  fabric reads, admission-filtered by a TinyLFU-style frequency sketch and
  kept coherent by (object id, generation) keying plus the store's existing
  NotifyDeleted / topology-epoch invalidation channels.
* :class:`TierEngine` — a sim-clock, byte-budgeted promotion/demotion
  engine (the Rebalancer's discrete-event idiom) that migrates hot remote
  objects to their readers and cold sealed objects to capacity-rich nodes,
  reusing the two-phase pull-migration machinery.

Everything is seeded and deterministic; with tiering disabled no code on
any hot path changes behaviour (the store branches on a ``None`` agent).
"""

from repro.tier.agent import TierAgent
from repro.tier.cache import FrequencySketch, HotObjectCache
from repro.tier.engine import TierConvergenceReport, TierEngine, TierTickReport
from repro.tier.heat import HeatTracker
from repro.tier.source import CachedBufferSource, TierBufferSource

__all__ = [
    "CachedBufferSource",
    "FrequencySketch",
    "HeatTracker",
    "HotObjectCache",
    "TierAgent",
    "TierBufferSource",
    "TierConvergenceReport",
    "TierEngine",
    "TierTickReport",
]
