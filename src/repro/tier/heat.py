"""Exponentially-decayed per-object heat on simulated time.

The promotion/demotion engine needs "how hot is this object *now*", not an
all-time access count. Each recorded access adds weight that then halves
every ``half_life_ns`` of simulated time — computed lazily from the clock,
so idle objects cost nothing to cool.

With ``sample_rate < 1`` only a seeded fraction of accesses is recorded
(each with its weight scaled up by ``1/sample_rate``, keeping the estimate
unbiased) — the decay-sampling knob that bounds tracker overhead on very
hot paths. All draws come from the tracker's own spawned RNG stream, so
sampling never perturbs any other subsystem's randomness.
"""

from __future__ import annotations

from repro.common.clock import SimClock
from repro.common.ids import ObjectID
from repro.common.rng import DeterministicRng


class HeatTracker:
    """Decay-sampled access heat, keyed by object id."""

    def __init__(
        self,
        clock: SimClock,
        *,
        half_life_ns: float,
        sample_rate: float = 1.0,
        rng: DeterministicRng | None = None,
    ):
        if half_life_ns <= 0:
            raise ValueError("heat half-life must be positive")
        if not 0.0 < sample_rate <= 1.0:
            raise ValueError("sample rate must be in (0, 1]")
        if sample_rate < 1.0 and rng is None:
            raise ValueError("sub-unit sampling needs a seeded rng")
        self._clock = clock
        self._half_life_ns = float(half_life_ns)
        self._sample_rate = float(sample_rate)
        self._rng = rng
        self._heat: dict[ObjectID, tuple[float, int]] = {}

    def _decay(self, dt_ns: int) -> float:
        return 0.5 ** (dt_ns / self._half_life_ns) if dt_ns > 0 else 1.0

    def record(self, object_id: ObjectID, weight: float = 1.0) -> None:
        if self._sample_rate < 1.0:
            if self._rng.uniform(0.0, 1.0) >= self._sample_rate:
                return
            weight = weight / self._sample_rate
        now = self._clock.now_ns
        value, last_ns = self._heat.get(object_id, (0.0, now))
        self._heat[object_id] = (value * self._decay(now - last_ns) + weight, now)

    def heat(self, object_id: ObjectID) -> float:
        entry = self._heat.get(object_id)
        if entry is None:
            return 0.0
        value, last_ns = entry
        return value * self._decay(self._clock.now_ns - last_ns)

    def hottest(self) -> list[tuple[ObjectID, float]]:
        """Every tracked object with its current heat, hottest first (ties
        broken by id so plans are deterministic)."""
        now = self._clock.now_ns
        ranked = [
            (oid, value * self._decay(now - last_ns))
            for oid, (value, last_ns) in self._heat.items()
        ]
        ranked.sort(key=lambda kv: (-kv[1], kv[0]))
        return ranked

    def forget(self, object_id: ObjectID) -> None:
        self._heat.pop(object_id, None)

    def prune(self, epsilon: float = 1e-3) -> int:
        """Drop entries that cooled below *epsilon*; returns how many."""
        cold = [oid for oid, _ in self._heat.items() if self.heat(oid) < epsilon]
        for oid in cold:
            del self._heat[oid]
        return len(cold)

    def clear(self) -> None:
        self._heat.clear()

    def __len__(self) -> int:
        return len(self._heat)
