"""Byte and time unit helpers.

The paper mixes decimal units (Table I sizes in kB) with binary units
(throughput in GiB/s); both families are provided so benchmark code can use
exactly the units the paper prints.
"""

from __future__ import annotations

from repro.common.clock import NS_PER_S

# Binary (IEC) units — used for throughput, matching the paper's GiB/s.
KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB

# Decimal (SI) units — Table I specifies object sizes in kB.
KB = 1000
MB = 1000 * KB
GB = 1000 * MB


def format_bytes(n: int) -> str:
    """Human-readable binary-unit rendering ('1.5 MiB')."""
    if n < 0:
        raise ValueError("byte counts are non-negative")
    for unit, name in ((GiB, "GiB"), (MiB, "MiB"), (KiB, "KiB")):
        if n >= unit:
            return f"{n / unit:.2f} {name}"
    return f"{n} B"


def format_duration_ns(ns: float) -> str:
    """Human-readable duration ('3.21 ms')."""
    if ns < 0:
        raise ValueError("durations are non-negative")
    if ns >= NS_PER_S:
        return f"{ns / NS_PER_S:.3f} s"
    if ns >= 1_000_000:
        return f"{ns / 1_000_000:.3f} ms"
    if ns >= 1_000:
        return f"{ns / 1_000:.3f} us"
    return f"{ns:.0f} ns"


def gib_per_s(nbytes: int, elapsed_ns: float) -> float:
    """Throughput in GiB/s for *nbytes* moved in *elapsed_ns*."""
    if elapsed_ns <= 0:
        raise ValueError("elapsed time must be positive to compute throughput")
    return (nbytes / GiB) / (elapsed_ns / NS_PER_S)
