"""Common substrate shared by every subsystem.

This package deliberately has no dependencies on the rest of :mod:`repro`:
it provides the primitives (object identifiers, simulated clock, errors,
configuration, RNG discipline and statistics) that the memory, fabric,
network, RPC and store layers are built from.
"""

from repro.common.clock import SimClock, Stopwatch, NS_PER_S, NS_PER_MS, NS_PER_US
from repro.common.errors import (
    ReproError,
    AllocationError,
    OutOfMemoryError,
    ObjectStoreError,
    ObjectExistsError,
    ObjectNotFoundError,
    ObjectNotSealedError,
    ObjectSealedError,
    ObjectInUseError,
    FabricError,
    ApertureError,
    NetworkError,
    ConnectionClosedError,
    RpcError,
    RpcStatusError,
)
from repro.common.ids import ObjectID, UniqueIDGenerator
from repro.common.rng import DeterministicRng, derive_seed
from repro.common.stats import Distribution, RunningStats
from repro.common.units import (
    KiB,
    MiB,
    GiB,
    KB,
    MB,
    GB,
    format_bytes,
    format_duration_ns,
    gib_per_s,
)

__all__ = [
    "SimClock",
    "Stopwatch",
    "NS_PER_S",
    "NS_PER_MS",
    "NS_PER_US",
    "ReproError",
    "AllocationError",
    "OutOfMemoryError",
    "ObjectStoreError",
    "ObjectExistsError",
    "ObjectNotFoundError",
    "ObjectNotSealedError",
    "ObjectSealedError",
    "ObjectInUseError",
    "FabricError",
    "ApertureError",
    "NetworkError",
    "ConnectionClosedError",
    "RpcError",
    "RpcStatusError",
    "ObjectID",
    "UniqueIDGenerator",
    "DeterministicRng",
    "derive_seed",
    "Distribution",
    "RunningStats",
    "KiB",
    "MiB",
    "GiB",
    "KB",
    "MB",
    "GB",
    "format_bytes",
    "format_duration_ns",
    "gib_per_s",
]
