"""Streaming statistics and distribution summaries.

Figure 7 of the paper is a box plot of per-repetition throughput; the bench
harness reproduces it as printed distribution summaries. `RunningStats`
(Welford's algorithm) gives numerically stable mean/variance for long
streams; `Distribution` keeps raw samples for quantiles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


class RunningStats:
    """Welford online mean/variance with min/max tracking."""

    __slots__ = ("_n", "_mean", "_m2", "_min", "_max")

    def __init__(self) -> None:
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def add(self, x: float) -> None:
        self._n += 1
        delta = x - self._mean
        self._mean += delta / self._n
        self._m2 += delta * (x - self._mean)
        if x < self._min:
            self._min = x
        if x > self._max:
            self._max = x

    def extend(self, xs) -> None:
        for x in xs:
            self.add(x)

    @property
    def count(self) -> int:
        return self._n

    @property
    def mean(self) -> float:
        if self._n == 0:
            raise ValueError("no samples")
        return self._mean

    @property
    def variance(self) -> float:
        """Sample variance (n-1 denominator)."""
        if self._n < 2:
            return 0.0
        return self._m2 / (self._n - 1)

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def min(self) -> float:
        if self._n == 0:
            raise ValueError("no samples")
        return self._min

    @property
    def max(self) -> float:
        if self._n == 0:
            raise ValueError("no samples")
        return self._max

    def merge(self, other: "RunningStats") -> "RunningStats":
        """Chan et al. parallel merge of two streams."""
        out = RunningStats()
        if self._n == 0:
            out._n, out._mean, out._m2 = other._n, other._mean, other._m2
            out._min, out._max = other._min, other._max
            return out
        if other._n == 0:
            out._n, out._mean, out._m2 = self._n, self._mean, self._m2
            out._min, out._max = self._min, self._max
            return out
        n = self._n + other._n
        delta = other._mean - self._mean
        out._n = n
        out._mean = self._mean + delta * other._n / n
        out._m2 = self._m2 + other._m2 + delta * delta * self._n * other._n / n
        out._min = min(self._min, other._min)
        out._max = max(self._max, other._max)
        return out


class Distribution:
    """Raw-sample distribution with box-plot quantiles.

    Keeps every sample (benchmark repetition counts are small — the paper
    uses 100 reps per benchmark) so exact quantiles are available.
    """

    def __init__(self) -> None:
        self._samples: list[float] = []
        self._sorted: list[float] | None = None

    def add(self, x: float) -> None:
        self._samples.append(float(x))
        self._sorted = None

    def extend(self, xs) -> None:
        for x in xs:
            self.add(x)

    @property
    def samples(self) -> list[float]:
        return list(self._samples)

    @property
    def count(self) -> int:
        return len(self._samples)

    def _ordered(self) -> list[float]:
        if self._sorted is None:
            self._sorted = sorted(self._samples)
        return self._sorted

    def quantile(self, q: float) -> float:
        """Linear-interpolation quantile, q in [0, 1]."""
        if not self._samples:
            raise ValueError("no samples")
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        xs = self._ordered()
        pos = q * (len(xs) - 1)
        lo = math.floor(pos)
        hi = math.ceil(pos)
        if lo == hi or xs[lo] == xs[hi]:
            return xs[lo]
        # x_lo + f*(x_hi - x_lo) rather than the two-product form: IEEE
        # multiplication is monotone in f, so quantiles never invert by a
        # rounding ulp.
        frac = pos - lo
        return xs[lo] + frac * (xs[hi] - xs[lo])

    @property
    def median(self) -> float:
        return self.quantile(0.5)

    @property
    def mean(self) -> float:
        if not self._samples:
            raise ValueError("no samples")
        return sum(self._samples) / len(self._samples)

    @property
    def min(self) -> float:
        return self._ordered()[0]

    @property
    def max(self) -> float:
        return self._ordered()[-1]

    def iqr(self) -> tuple[float, float]:
        """(Q1, Q3) — the box of a box plot."""
        return self.quantile(0.25), self.quantile(0.75)

    def summary(self) -> "DistributionSummary":
        q1, q3 = self.iqr()
        return DistributionSummary(
            count=self.count,
            mean=self.mean,
            median=self.median,
            q1=q1,
            q3=q3,
            min=self.min,
            max=self.max,
        )


@dataclass(frozen=True)
class DistributionSummary:
    """The five-number summary (plus mean/count) a box plot renders."""

    count: int
    mean: float
    median: float
    q1: float
    q3: float
    min: float
    max: float

    def format(self, unit: str = "", scale: float = 1.0) -> str:
        u = f" {unit}" if unit else ""
        return (
            f"n={self.count} median={self.median * scale:.3f}{u} "
            f"IQR=[{self.q1 * scale:.3f}, {self.q3 * scale:.3f}]{u} "
            f"range=[{self.min * scale:.3f}, {self.max * scale:.3f}]{u}"
        )
