"""Exception hierarchy for the framework.

Every exception raised by :mod:`repro` derives from :class:`ReproError`, so
applications can catch framework failures with a single ``except`` clause
while still being able to discriminate by subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the framework."""


# ---------------------------------------------------------------------------
# Memory / allocation
# ---------------------------------------------------------------------------


class AllocationError(ReproError):
    """An allocator could not satisfy a request for a structural reason
    (bad size, double free, unknown block...)."""


class OutOfMemoryError(AllocationError):
    """The managed region has no free range large enough for the request."""

    def __init__(self, requested: int, largest_free: int, total_free: int):
        self.requested = requested
        self.largest_free = largest_free
        self.total_free = total_free
        super().__init__(
            f"cannot allocate {requested} bytes: largest free run is "
            f"{largest_free} bytes ({total_free} bytes free in total)"
        )


# ---------------------------------------------------------------------------
# Object store
# ---------------------------------------------------------------------------


class ObjectStoreError(ReproError):
    """Base class for Plasma object-store errors."""


class ObjectExistsError(ObjectStoreError):
    """An object with this id already exists (locally or on a peer store)."""


class ObjectNotFoundError(ObjectStoreError):
    """No object with this id exists anywhere the store can see."""


class ObjectUnavailableError(ObjectNotFoundError):
    """The object could not be resolved *and* at least one peer that might
    home it was unreachable (crashed store process, open circuit breaker,
    partition, or deadline expiry).

    Subclasses :class:`ObjectNotFoundError` so callers that treat "not
    found" generically keep working; resilience-aware callers can
    discriminate and e.g. retry after the peer recovers.
    """

    def __init__(self, message: str, unreachable_peers: tuple = ()):
        self.unreachable_peers = tuple(unreachable_peers)
        super().__init__(message)


class ObjectNotSealedError(ObjectStoreError):
    """The object exists but has not been sealed; it cannot be read yet."""


class ObjectSealedError(ObjectStoreError):
    """The object is sealed and therefore immutable; it cannot be written."""


class ObjectInUseError(ObjectStoreError):
    """The operation requires the object to be unused, but a client still
    holds a reference to its buffer."""


class PlacementError(ObjectStoreError):
    """A placement/membership operation is invalid in the current topology
    (unknown member, bad lifecycle transition, empty ring...)."""


class AdmissionRejectedError(ObjectStoreError):
    """Multi-tenant admission control refused the operation at the client
    entry point — the tenant is over a byte quota or its token bucket is
    empty. Carries the tenant and a machine-readable reason so callers
    (and the workload runner's per-tenant metrics) can discriminate
    throttling from capacity exhaustion.
    """

    def __init__(self, tenant: str, reason: str, detail: str = ""):
        self.tenant = tenant
        self.reason = reason
        message = f"tenant {tenant!r} rejected by admission control ({reason})"
        if detail:
            message += f": {detail}"
        super().__init__(message)


class IntegrityError(ObjectStoreError):
    """Base class for end-to-end data-integrity failures: the bytes a
    descriptor points at do not match what the descriptor promises."""


class StaleDescriptorError(IntegrityError):
    """A remote read's in-region header check failed in a way that means
    the descriptor no longer describes a live sealed object — the home
    store deleted, evicted, or reallocated the extent (generation bumped,
    seal flag cleared, or a different object id in place). The reader's
    lookup cache entry is invalid; one re-lookup is attempted before this
    surfaces."""


class ObjectCorruptedError(IntegrityError):
    """The object's bytes fail checksum (or its header is smashed): the
    payload cannot be trusted. Raised by validated reads and by the
    anti-entropy scrubber; quarantined objects answer every read with
    this."""


# ---------------------------------------------------------------------------
# Disaggregation fabric
# ---------------------------------------------------------------------------


class FabricError(ReproError):
    """Base class for ThymesisFlow fabric errors."""


class ApertureError(FabricError):
    """An access fell outside every mapped aperture, or an aperture mapping
    was invalid (overlap, unknown home node, out-of-range window)."""


class LinkPartitionedError(FabricError):
    """The OpenCAPI link this access needs is partitioned (fault injection):
    loads, stores and streaming transfers all fail until the link heals."""


# ---------------------------------------------------------------------------
# Network / RPC
# ---------------------------------------------------------------------------


class NetworkError(ReproError):
    """Base class for LAN-model errors."""


class ConnectionClosedError(NetworkError):
    """The peer endpoint of a connection has been closed."""


class RpcError(ReproError):
    """Base class for RPC-layer errors."""


class RpcStatusError(RpcError):
    """A unary call completed with a non-OK status.

    Mirrors gRPC's status-code model: the server handler maps exceptions to a
    status code + detail message, and the client-side stub re-raises them as
    this exception.
    """

    def __init__(self, code: "object", detail: str = ""):
        self.code = code
        self.detail = detail
        super().__init__(f"RPC failed with status {code}: {detail}")


class ServerOverloadedError(RpcStatusError):
    """The server shed this request under overload (RESOURCE_EXHAUSTED):
    its bounded request queue was full, or the propagated deadline budget
    made the work not worth starting. Shedding is load control, not peer
    death — the peer is alive and answering — so callers should back off
    (the channel's retry budget gates how hard) rather than fail over.

    Subclasses :class:`RpcStatusError` with a fixed RESOURCE_EXHAUSTED
    code so existing ``except RpcStatusError`` / ``exc.code`` handling
    keeps working unchanged.
    """

    def __init__(self, detail: str = ""):
        # Imported here to keep repro.common free of an rpc-layer import
        # cycle (repro.rpc.status imports nothing back).
        from repro.rpc.status import StatusCode

        super().__init__(StatusCode.RESOURCE_EXHAUSTED, detail)
