"""Object identifiers.

Apache Arrow Plasma identifies objects with opaque 20-byte ids; clients
usually draw them at random (``ObjectID.from_random``) or derive them from a
content hash. The distributed framework additionally requires ids to be
unique *across all connected stores* (paper §IV-A2), which the store layer
enforces with RPC ``Contains`` checks at creation time — the id type itself
stays a dumb value object.
"""

from __future__ import annotations

import hashlib
from typing import Iterator

from repro.common.rng import DeterministicRng

ID_NBYTES = 20


class ObjectID:
    """An immutable, hashable 20-byte object identifier.

    Instances compare by value and order lexicographically by their raw
    bytes, which lets the stores keep ordered id maps.
    """

    __slots__ = ("_data",)

    def __init__(self, data: bytes):
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise TypeError(f"ObjectID requires bytes, got {type(data).__name__}")
        data = bytes(data)
        if len(data) != ID_NBYTES:
            raise ValueError(
                f"ObjectID requires exactly {ID_NBYTES} bytes, got {len(data)}"
            )
        self._data = data

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_random(cls, rng: DeterministicRng) -> "ObjectID":
        """Draw a fresh id from *rng* (deterministic under a fixed seed)."""
        return cls(rng.bytes(ID_NBYTES))

    @classmethod
    def from_name(cls, name: str) -> "ObjectID":
        """Derive an id from a human-readable name (SHA-1, like Plasma docs
        suggest for content-addressed ids)."""
        return cls(hashlib.sha1(name.encode("utf-8")).digest())

    @classmethod
    def from_int(cls, value: int) -> "ObjectID":
        """Build an id from a non-negative integer (useful in tests and
        generated workloads)."""
        if value < 0:
            raise ValueError("ObjectID integers must be non-negative")
        return cls(value.to_bytes(ID_NBYTES, "big"))

    # -- accessors -----------------------------------------------------------

    def binary(self) -> bytes:
        """The raw 20 bytes."""
        return self._data

    def hex(self) -> str:
        """Lower-case hex rendering (40 chars)."""
        return self._data.hex()

    # -- dunder --------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ObjectID):
            return self._data == other._data
        return NotImplemented

    def __lt__(self, other: "ObjectID") -> bool:
        if isinstance(other, ObjectID):
            return self._data < other._data
        return NotImplemented

    def __le__(self, other: "ObjectID") -> bool:
        if isinstance(other, ObjectID):
            return self._data <= other._data
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._data)

    def __repr__(self) -> str:
        return f"ObjectID({self._data.hex()[:12]}…)"

    def __bytes__(self) -> bytes:
        return self._data


class UniqueIDGenerator:
    """Yields ids guaranteed unique within this generator.

    Random 20-byte ids collide with negligible probability, but benchmark
    workloads want *certainty* plus determinism, so this generator tracks
    what it has handed out and redraws on (astronomically unlikely) repeats.
    """

    def __init__(self, rng: DeterministicRng):
        self._rng = rng
        self._seen: set[ObjectID] = set()

    def next(self) -> ObjectID:
        while True:
            oid = ObjectID.from_random(self._rng)
            if oid not in self._seen:
                self._seen.add(oid)
                return oid

    def take(self, n: int) -> list[ObjectID]:
        """Generate *n* fresh ids."""
        return [self.next() for _ in range(n)]

    def __iter__(self) -> Iterator[ObjectID]:
        while True:
            yield self.next()
