"""Configuration dataclasses with paper-calibrated defaults.

Every cost model in the simulation reads its parameters from these frozen
dataclasses. The defaults are calibrated against the numbers the paper
reports for its IBM IC922 + Alpha Data 9V3 testbed (see DESIGN.md §2):

* local sequential read bandwidth        ~ 6.5  GiB/s   (Fig 7, specs 4-6)
* ThymesisFlow remote read bandwidth     ~ 5.75 GiB/s   (Fig 7, specs 4-6)
* local retrieval latency                T = 57 us + 1.85 us/object (Fig 6)
* remote retrieval latency               T = local + gRPC round trip
                                         ~ 2.4 ms (jittered) + 0.9 us/object

Changing a default changes the regenerated figures; the benchmark suite
asserts the *shape* (who wins, by what factor), so recalibration for a
different target machine only requires touching this module.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.common.units import GiB, KiB, MiB


@dataclass(frozen=True)
class LocalMemoryConfig:
    """Cost model of a node's local DRAM path (single-threaded).

    ``read_bandwidth`` is deliberately the paper's *measured end-to-end*
    single-thread figure, not the DIMM spec: it already folds in the copy
    loop the benchmark runs.
    """

    read_bandwidth_bps: float = 6.5 * GiB
    write_bandwidth_bps: float = 6.0 * GiB
    # Per-buffer overhead of a streaming read/write (loop setup, prefetch
    # warm-up). Kept tiny: Fig 7 shows even 1 kB objects near full bandwidth.
    access_latency_ns: float = 15.0
    # POWER9 cache geometry: 128-byte lines; IC922 has a large L3. Objects
    # still resident in cache read faster — the paper's explanation for the
    # >6.5 GiB/s outliers in specs 1-3 is that small objects cache well.
    cache_line_bytes: int = 128
    cache_capacity_bytes: int = 64 * MiB
    cached_read_speedup: float = 1.09
    # Multiplicative log-normal jitter applied per streaming burst.
    jitter_sigma: float = 0.01
    # Additive absolute timing noise per measured phase (OS scheduling,
    # timer granularity). This is what makes short measurements (specs 1-3,
    # ~1-20 MB per repetition) noisy while long ones (specs 4-6) stabilise,
    # reproducing Fig 7's variance structure.
    phase_noise_std_ns: float = 12_000.0


@dataclass(frozen=True)
class FabricLinkConfig:
    """Cost model of one ThymesisFlow (OpenCAPI) point-to-point link.

    The added latency term models the off-chip FPGA round trip the
    ThymesisFlow paper measures (~1 us order); bandwidth is the end-to-end
    single-thread remote read figure from Fig 7.
    """

    read_bandwidth_bps: float = 5.75 * GiB
    write_bandwidth_bps: float = 5.4 * GiB
    # Unloaded single-access (cache-line) round-trip latency through the
    # FPGA pair — matches the ThymesisFlow paper's microbenchmarks. Charged
    # by word-granular load/store operations.
    added_latency_ns: float = 1_100.0
    # Streaming reads pipeline line fills, hiding the per-line latency; a
    # bulk transfer pays only this small per-buffer setup cost plus the
    # bandwidth term (how a single-threaded memcpy reaches 5.75 GiB/s).
    streaming_overhead_ns: float = 10.0
    jitter_sigma: float = 0.012
    # Max bytes per fabric transaction; larger reads are split (models the
    # OpenCAPI DMA burst size; only affects latency accounting granularity).
    max_burst_bytes: int = 2 * MiB


@dataclass(frozen=True)
class IpcConfig:
    """Unix-domain-socket IPC between a Plasma client and its local store.

    Fitted from Fig 6's local series: total retrieval latency for n objects
    is ``request_overhead + n * per_object``.
    """

    request_overhead_ns: float = 55_000.0
    per_object_ns: float = 1_830.0
    per_byte_ns: float = 0.0  # handles are passed by fd, not copied
    jitter_sigma: float = 0.05


@dataclass(frozen=True)
class RpcConfig:
    """gRPC (synchronous, unary) cost model.

    The paper configures gRPC 1.38 in synchronous unary mode; Fig 6's remote
    series is "likely dominated by gRPC and its inherent network jitter".
    The round-trip default and jitter reproduce the 2.6-5.0 ms band.
    """

    round_trip_ns: float = 2_300_000.0
    # Marshalling + HTTP/2 framing + LAN cost per serialized byte. RPC
    # messages here are metadata-only (ids and object descriptors, ~70
    # serialized bytes per object), so this term contributes the fitted
    # ~0.85 us/object slope of Fig 6's remote series.
    per_byte_ns: float = 8.5
    # Per-message HTTP/2 frame handling cost on a *streaming* call; unary
    # calls fold this into the round trip. The paper picked unary "to
    # minimize protocol overhead for the messages being sent" — the E9
    # ablation quantifies when streaming wins anyway.
    per_stream_message_ns: float = 1_500.0
    jitter_sigma: float = 0.18
    # Fault injection: probability that any single call attempt fails with
    # UNAVAILABLE (models transient LAN/connection faults). 0 disables.
    inject_failure_rate: float = 0.0
    # Transparent retries on UNAVAILABLE (gRPC retry policy); each attempt
    # is charged in full. 0 means fail on the first UNAVAILABLE.
    max_retries: int = 2
    # Exponential backoff between retry attempts (gRPC retry policy shape:
    # initial * multiplier^n, capped, with multiplicative log-normal jitter
    # so synchronized retriers decorrelate). The waiting client's clock is
    # charged for every backoff interval.
    retry_initial_backoff_ns: float = 500_000.0
    retry_backoff_multiplier: float = 2.0
    retry_max_backoff_ns: float = 50_000_000.0
    retry_backoff_jitter_sigma: float = 0.1
    # Default per-call deadline. A call that would complete after its
    # deadline is charged only up to the deadline and raises
    # DEADLINE_EXCEEDED. 0 disables (calls wait indefinitely — the paper's
    # blocking unary configuration).
    default_deadline_ns: float = 0.0
    # --- client-side overload taming (repro.rpc.overload) ---
    # Retry budget: a per-channel token bucket capping retry amplification.
    # Every retry (transport failure, UNAVAILABLE, or a RESOURCE_EXHAUSTED
    # shed) spends one token; an exhausted budget fails the call fast with
    # the last error instead of storming an already-overloaded peer.
    # 0 disables (unlimited retries up to max_retries — the legacy shape).
    retry_budget_per_s: float = 0.0
    retry_budget_burst: int = 10
    # Hedged reads: after the per-channel latency quantile below, a replica
    # read that has not completed is abandoned (cancelled) and re-issued at
    # another holder. 0 disables hedging; no hedging happens until the
    # channel has observed hedge_min_samples completed calls.
    hedge_quantile: float = 0.0
    hedge_min_samples: int = 20
    # --- async event-loop mode (repro.rpc.aio) ---
    # "sync" preserves the paper's blocking one-in-flight unary semantics
    # (and keeps every standing BENCH/TRACE artifact byte-identical);
    # "async" runs calls as event-loop tasks: many in flight per peer,
    # id-list RPCs coalesced into batched wire messages, hedged lookups as
    # racing tasks.
    mode: str = "sync"
    # Coalescing policy: submissions within batch_window_ns of the first
    # buffered entry (or until max_batch ids accumulate) merge into one
    # wire message. window 0 = flush immediately (no added latency).
    batch_window_ns: float = 0.0
    max_batch: int = 16
    # Async hedged lookups: after this stagger, a not-yet-resolved batched
    # lookup races a second probe at the next candidate peer. 0 disables.
    hedge_stagger_ns: float = 0.0
    # Chunk size for streamed bulk pulls (migration / replication / tier
    # promotion) in async mode; sync mode always pulls in one lump.
    stream_chunk_bytes: int = 64 * 1024


@dataclass(frozen=True)
class LanConfig:
    """Plain LAN (TCP-like) transfer model for the scale-out baseline."""

    bandwidth_bps: float = 1.1 * GiB  # ~10 GbE effective
    round_trip_ns: float = 180_000.0
    per_byte_ns: float = 0.0  # derived from bandwidth
    jitter_sigma: float = 0.08


@dataclass(frozen=True)
class DmsgConfig:
    """Messaging-via-disaggregated-memory transport (paper §IV-A2 approach
    2, implemented in :mod:`repro.core.dmsg`)."""

    # How often a store's service loop polls its peers' request rings; a
    # call waits half of this on average, twice (request + response legs).
    poll_interval_ns: float = 4_000.0
    # Data bytes per SPSC ring; bounds the largest single message.
    ring_capacity_bytes: int = 1 * MiB


@dataclass(frozen=True)
class HealthConfig:
    """Failure detection and degraded-mode behaviour (repro.core.health).

    Timeouts are simulated nanoseconds against the cluster's SimClock.
    """

    # Heartbeat-based failure detection: each node pings every peer at most
    # once per interval (HealthMonitor.tick()); a peer that has not answered
    # within the suspicion timeout is *suspected* dead.
    heartbeat_interval_ns: float = 50_000_000.0
    suspicion_timeout_ns: float = 250_000_000.0
    # Per-peer circuit breaker: after this many *consecutive failed calls*
    # (UNAVAILABLE / DEADLINE_EXCEEDED after all retries) the breaker opens
    # and subsequent calls fail fast without a round trip.
    breaker_failure_threshold: int = 3
    # How long an open breaker waits before letting probe calls through
    # (half-open state).
    breaker_reset_timeout_ns: float = 500_000_000.0
    # Calls admitted while half-open; one success closes the breaker, any
    # failure re-opens it.
    breaker_half_open_probes: int = 1
    # Simulated cost of a call rejected by an open breaker (local connection
    # bookkeeping only — the point is that it is far below a round trip).
    breaker_fail_fast_ns: float = 1_000.0

    def validate(self) -> None:
        if self.breaker_failure_threshold < 1:
            raise ValueError("breaker_failure_threshold must be >= 1")
        if self.breaker_half_open_probes < 1:
            raise ValueError("breaker_half_open_probes must be >= 1")
        for name in (
            "heartbeat_interval_ns",
            "suspicion_timeout_ns",
            "breaker_reset_timeout_ns",
            "breaker_fail_fast_ns",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


@dataclass(frozen=True)
class ChaosConfig:
    """Deterministic fault injection (repro.chaos).

    A :class:`~repro.chaos.FaultPlan` carries the *what and when*; this
    config carries behavioural constants and the knobs
    :meth:`~repro.chaos.FaultPlan.random` uses to synthesise plans from a
    seed.
    """

    # How long a client waits on an attempt swallowed by a blackhole or
    # partition before concluding UNAVAILABLE (a TCP-ish connect timeout).
    # Per-call deadlines cap this further.
    blackhole_timeout_ns: float = 10_000_000.0
    # Defaults for randomly generated plans: degraded links multiply
    # bandwidth by the first factor and latency by the second.
    degrade_bandwidth_factor: float = 0.25
    degrade_latency_factor: float = 4.0
    # Mean outage duration for generated crash/partition/blackhole events.
    mean_outage_ns: float = 500_000_000.0

    def validate(self) -> None:
        if self.blackhole_timeout_ns <= 0:
            raise ValueError("blackhole_timeout_ns must be positive")
        if not 0.0 < self.degrade_bandwidth_factor <= 1.0:
            raise ValueError("degrade_bandwidth_factor must be in (0, 1]")
        if self.degrade_latency_factor < 1.0:
            raise ValueError("degrade_latency_factor must be >= 1")
        if self.mean_outage_ns <= 0:
            raise ValueError("mean_outage_ns must be positive")


@dataclass(frozen=True)
class PlacementConfig:
    """Elastic placement (repro.placement): ring shape and rebalance pacing."""

    # Virtual ring points per unit of member weight. More points = smoother
    # ownership shares at the cost of a larger (still tiny) ring.
    vnodes: int = 64
    # Allocator utilization above which a member's ring weight is derated
    # (capacity awareness); below it utilization does not move the ring, so
    # rebalancing cannot oscillate.
    capacity_high_watermark: float = 0.85
    # Floor of the capacity derate: even a full store keeps this fraction
    # of its weight (it can still be a last-resort home).
    min_capacity_factor: float = 0.05
    # Rebalancer throttle: payload bytes migrated per tick, and the
    # simulated time one tick stands for.
    rebalance_bytes_per_tick: int = 8 * MiB
    rebalance_tick_interval_ns: float = 1_000_000.0

    def validate(self) -> None:
        if self.vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        if not 0.0 < self.capacity_high_watermark <= 1.0:
            raise ValueError("capacity_high_watermark must be in (0, 1]")
        if not 0.0 < self.min_capacity_factor <= 1.0:
            raise ValueError("min_capacity_factor must be in (0, 1]")
        if self.rebalance_bytes_per_tick <= 0:
            raise ValueError("rebalance_bytes_per_tick must be positive")
        if self.rebalance_tick_interval_ns < 0:
            raise ValueError("rebalance_tick_interval_ns must be non-negative")


@dataclass(frozen=True)
class TierConfig:
    """Tiered memory (repro.tier): hot-object byte cache + promote/demote.

    Disabled by default; a cluster built without ``tiering=True`` never
    constructs any tier state, so every legacy artifact stays
    byte-identical.
    """

    # Per-node hot-object byte cache capacity. 0 disables the cache while
    # keeping heat tracking (promotion/demotion still runs).
    cache_capacity_bytes: int = 8 * MiB
    # TinyLFU admission sketch geometry (count-min, 4-bit counters).
    sketch_width: int = 512
    sketch_depth: int = 4
    # Heat decays by half every this much simulated time; with
    # sample_rate < 1 only a seeded fraction of accesses is recorded
    # (weight-scaled, unbiased).
    heat_half_life_ns: float = 500_000_000.0
    heat_sample_rate: float = 1.0
    # Promote a remote object to its reader once its decayed remote-read
    # heat at that reader crosses this threshold.
    promote_min_heat: float = 3.0
    # Demote cold objects from nodes above the watermark until they are
    # back at the target utilisation; destinations must stay below the
    # watermark after absorbing the object.
    demote_watermark: float = 0.85
    demote_target: float = 0.70
    # Tier-engine throttle, mirroring the rebalancer's tick shape.
    bytes_per_tick: int = 4 * MiB
    tick_interval_ns: float = 2_000_000.0
    # A cache hit is a local DRAM copy: same shape (and default constants)
    # as the calibrated local-memory model, with an independent jitter
    # stream so enabling the cache never perturbs other subsystems' draws.
    cache_hit_latency_ns: float = 15.0
    cache_hit_bandwidth_bps: float = 6.5 * GiB
    cache_hit_jitter_sigma: float = 0.01

    def validate(self) -> None:
        if self.cache_capacity_bytes < 0:
            raise ValueError("cache_capacity_bytes must be non-negative")
        if self.sketch_width < 1 or self.sketch_depth < 1:
            raise ValueError("sketch geometry must be positive")
        if self.heat_half_life_ns <= 0:
            raise ValueError("heat_half_life_ns must be positive")
        if not 0.0 < self.heat_sample_rate <= 1.0:
            raise ValueError("heat_sample_rate must be in (0, 1]")
        if self.promote_min_heat <= 0:
            raise ValueError("promote_min_heat must be positive")
        if not 0.0 < self.demote_target < self.demote_watermark <= 1.0:
            raise ValueError(
                "need 0 < demote_target < demote_watermark <= 1"
            )
        if self.bytes_per_tick <= 0:
            raise ValueError("bytes_per_tick must be positive")
        if self.tick_interval_ns < 0:
            raise ValueError("tick_interval_ns must be non-negative")
        if self.cache_hit_latency_ns < 0:
            raise ValueError("cache_hit_latency_ns must be non-negative")
        if self.cache_hit_bandwidth_bps <= 0:
            raise ValueError("cache_hit_bandwidth_bps must be positive")
        if self.cache_hit_jitter_sigma < 0:
            raise ValueError("cache_hit_jitter_sigma must be non-negative")


@dataclass(frozen=True)
class OverloadConfig:
    """Server-side admission control (repro.rpc.overload).

    Models the finite request-servicing capacity of a store's gRPC thread.
    Defaults model the paper's assumption — infinite capacity — so nothing
    changes unless a service rate (or an injected overload burst) makes the
    server finite: then queueing delay appears in observed latency and the
    bounded queue sheds with RESOURCE_EXHAUSTED instead of queueing forever.
    """

    # Requests the server can service per simulated second. 0 disables the
    # whole admission model (infinite capacity, the pre-overload behaviour).
    service_rate_ops_per_s: float = 0.0
    # Bounded request queue: a request arriving with this many requests
    # already waiting is shed with RESOURCE_EXHAUSTED. 0 = unbounded (the
    # queue grows without limit — the "collapse" control in benchmarks).
    queue_depth: int = 64
    # 'fifo' services in arrival order; 'lifo' lets a fresh arrival jump the
    # queue under pressure (newest-first adaptive discipline: recent
    # requests still have deadline budget left, the backlogged ones are
    # probably already being retried).
    queue_discipline: str = "fifo"
    # Shed work whose propagated deadline budget is already spent, or that
    # cannot possibly finish within it given the current backlog, before
    # doing any servicing work for it.
    shed_expired: bool = True

    def validate(self) -> None:
        if self.service_rate_ops_per_s < 0:
            raise ValueError("service_rate_ops_per_s must be non-negative")
        if self.queue_depth < 0:
            raise ValueError("queue_depth must be non-negative")
        if self.queue_discipline not in ("fifo", "lifo"):
            raise ValueError(
                f"unknown queue discipline {self.queue_discipline!r}; "
                "have ('fifo', 'lifo')"
            )


@dataclass(frozen=True)
class StoreConfig:
    """Plasma store behaviour knobs."""

    # Default store capacity. The paper's IC922 nodes hold hundreds of GB;
    # the simulation backs every store with a real bytearray, so the default
    # is sized for laptops. Benchmarks override per workload.
    capacity_bytes: int = 256 * MiB
    # Fraction of capacity freed per eviction round (mirrors Plasma, which
    # evicts in bulk to amortise the scan).
    eviction_batch_fraction: float = 0.2
    # Victim ordering: 'lru' (Plasma's policy, default), 'fifo', or
    # 'largest_first' — the E10 ablation compares them.
    eviction_policy: str = "lru"
    # Allocator selection: 'first_fit' is the paper's replacement allocator,
    # 'dlmalloc' the original library's strategy, 'buddy' an extension.
    allocator: str = "first_fit"
    alignment: int = 64
    # --- end-to-end integrity (sealed-object in-region headers) ---
    # Write a 64-byte header (magic, id, generation, sizes, CRC32C, seal
    # flag) into the region ahead of every object's payload. Required for
    # validated fabric reads, restart recovery, and the scrubber.
    integrity_headers: bool = True
    # Validate the in-region header (magic / object id / generation / seal
    # flag) before a fabric read streams the payload, and re-check the
    # generation afterwards to catch mid-copy retirement.
    verify_remote_reads: bool = True
    # Additionally verify the payload CRC on every remote read. Off by
    # default: always-on CRC would sit on the Fig 7 hot path; the scrubber
    # covers at-rest corruption and torn/stale reads are already caught by
    # the header checks above.
    verify_checksum_on_read: bool = False
    # Modeled cost of checksumming, charged to the simulated clock per byte
    # checksummed on a *timed* path (remote reads with CRC verification).
    # 0.0 models a hardware-accelerated CRC32C folded into the copy loop.
    checksum_ns_per_byte: float = 0.0


@dataclass(frozen=True)
class ClusterConfig:
    """Everything needed to stand up a simulated cluster."""

    seed: int = 2022
    local_memory: LocalMemoryConfig = field(default_factory=LocalMemoryConfig)
    fabric: FabricLinkConfig = field(default_factory=FabricLinkConfig)
    ipc: IpcConfig = field(default_factory=IpcConfig)
    rpc: RpcConfig = field(default_factory=RpcConfig)
    lan: LanConfig = field(default_factory=LanConfig)
    dmsg: DmsgConfig = field(default_factory=DmsgConfig)
    store: StoreConfig = field(default_factory=StoreConfig)
    health: HealthConfig = field(default_factory=HealthConfig)
    chaos: ChaosConfig = field(default_factory=ChaosConfig)
    placement: PlacementConfig = field(default_factory=PlacementConfig)
    overload: OverloadConfig = field(default_factory=OverloadConfig)
    tier: TierConfig = field(default_factory=TierConfig)
    # Fraction of each node's store capacity carved out as the local
    # disaggregated region (paper: "a portion of local system memory is
    # marked as disaggregated").
    disaggregated_fraction: float = 1.0

    def with_seed(self, seed: int) -> "ClusterConfig":
        return replace(self, seed=seed)

    def with_store(self, **kwargs) -> "ClusterConfig":
        return replace(self, store=replace(self.store, **kwargs))

    def validate(self) -> None:
        if self.store.capacity_bytes <= 0:
            raise ValueError("store capacity must be positive")
        if not 0.0 < self.disaggregated_fraction <= 1.0:
            raise ValueError("disaggregated_fraction must be in (0, 1]")
        if self.store.alignment <= 0 or self.store.alignment & (self.store.alignment - 1):
            raise ValueError("alignment must be a positive power of two")
        if self.store.allocator not in ("first_fit", "dlmalloc", "buddy"):
            raise ValueError(f"unknown allocator {self.store.allocator!r}")
        if self.store.eviction_policy not in ("lru", "fifo", "largest_first"):
            raise ValueError(
                f"unknown eviction policy {self.store.eviction_policy!r}"
            )
        if self.store.checksum_ns_per_byte < 0:
            raise ValueError("checksum_ns_per_byte must be non-negative")
        if self.store.verify_remote_reads and not self.store.integrity_headers:
            raise ValueError(
                "verify_remote_reads requires integrity_headers: there is "
                "no in-region header to validate against"
            )
        if self.store.verify_checksum_on_read and not self.store.verify_remote_reads:
            raise ValueError(
                "verify_checksum_on_read requires verify_remote_reads"
            )
        self.health.validate()
        self.chaos.validate()
        self.placement.validate()
        self.overload.validate()
        self.tier.validate()
        if self.rpc.retry_budget_per_s < 0:
            raise ValueError("retry_budget_per_s must be non-negative")
        if self.rpc.retry_budget_burst < 1:
            raise ValueError("retry_budget_burst must be >= 1")
        if not 0.0 <= self.rpc.hedge_quantile < 1.0:
            raise ValueError("hedge_quantile must be in [0, 1)")
        if self.rpc.hedge_min_samples < 1:
            raise ValueError("hedge_min_samples must be >= 1")
        if self.rpc.mode not in ("sync", "async"):
            raise ValueError(f"unknown rpc mode {self.rpc.mode!r}")
        if self.rpc.batch_window_ns < 0:
            raise ValueError("batch_window_ns must be non-negative")
        if self.rpc.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.rpc.hedge_stagger_ns < 0:
            raise ValueError("hedge_stagger_ns must be non-negative")
        if self.rpc.stream_chunk_bytes < 1:
            raise ValueError("stream_chunk_bytes must be >= 1")
        for bw_name, bw in (
            ("local read", self.local_memory.read_bandwidth_bps),
            ("local write", self.local_memory.write_bandwidth_bps),
            ("fabric read", self.fabric.read_bandwidth_bps),
            ("fabric write", self.fabric.write_bandwidth_bps),
            ("lan", self.lan.bandwidth_bps),
        ):
            if bw <= 0:
                raise ValueError(f"{bw_name} bandwidth must be positive")


# A small-capacity config for fast unit tests.
def testing_config(capacity_bytes: int = 64 * MiB, seed: int = 7) -> ClusterConfig:
    """A cluster config sized for unit tests (small capacity, fixed seed)."""
    cfg = ClusterConfig(seed=seed)
    return replace(cfg, store=replace(cfg.store, capacity_bytes=capacity_bytes))


# Alignment used by real Plasma for object buffers; kept here so tests and
# allocators agree on one constant.
DEFAULT_ALIGNMENT = 64
MINIMUM_OBJECT_SIZE = 1
MAXIMUM_REASONABLE_OBJECT = 16 * GiB
_ = KiB  # re-exported convenience
