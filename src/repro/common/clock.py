"""Simulated time.

The paper's performance numbers come from POWER9 servers with OpenCAPI FPGAs;
this reproduction runs on commodity hardware, so *simulated* nanoseconds are
the unit of performance. Every modelled component (memory fabric, LAN, RPC)
advances a shared :class:`SimClock` by the time its calibrated cost model
says the operation takes; benchmark harnesses read elapsed simulated time to
regenerate the paper's latency/throughput series deterministically.

Data movement itself is real (bytes are physically copied), only the *cost*
is modelled — see DESIGN.md §2.
"""

from __future__ import annotations

NS_PER_S = 1_000_000_000
NS_PER_MS = 1_000_000
NS_PER_US = 1_000


class SimClock:
    """A monotonically advancing simulated-nanosecond counter.

    A cluster owns one clock; every node, link and RPC channel in that
    cluster advances it. The single-clock model matches the paper's
    benchmarks, which are single-threaded: at any instant exactly one
    modelled operation is in flight, so a scalar counter is an exact account
    of elapsed time.
    """

    __slots__ = ("_now_ns", "_on_advance")

    def __init__(self, start_ns: int = 0):
        if start_ns < 0:
            raise ValueError("clock cannot start before t=0")
        self._now_ns = int(start_ns)
        self._on_advance = None

    @property
    def now_ns(self) -> int:
        """Current simulated time in nanoseconds since simulation start."""
        return self._now_ns

    @property
    def now_s(self) -> float:
        return self._now_ns / NS_PER_S

    def advance(self, delta_ns: float) -> int:
        """Advance the clock by *delta_ns* (fractional ns are accumulated by
        rounding half-up at each step; cost models produce floats).

        Returns the new time. Negative deltas are rejected — simulated time
        never flows backwards.
        """
        if delta_ns < 0:
            raise ValueError(f"cannot advance clock by negative {delta_ns} ns")
        applied = int(round(delta_ns))
        self._now_ns += applied
        if self._on_advance is not None and applied:
            self._on_advance(applied)
        return self._now_ns

    def set_advance_listener(self, listener) -> None:
        """Install *listener(delta_ns)*, called after every positive integer
        advance with the exact delta applied. One listener at a time; pass
        ``None`` to remove. The tracing plane uses this to attribute each
        slice of simulated time to the component that spent it — the
        listener must never advance the clock or draw simulation RNG.
        """
        self._on_advance = listener

    def __repr__(self) -> str:
        return f"SimClock(now={self._now_ns} ns)"


class Stopwatch:
    """Measures an interval of simulated time against a :class:`SimClock`.

    Usage::

        sw = Stopwatch(clock).start()
        ...  # modelled operations advance the clock
        elapsed = sw.stop()     # simulated ns
    """

    def __init__(self, clock: SimClock):
        self._clock = clock
        self._start_ns: int | None = None
        self._elapsed_ns: int | None = None

    def start(self) -> "Stopwatch":
        self._start_ns = self._clock.now_ns
        self._elapsed_ns = None
        return self

    def stop(self) -> int:
        if self._start_ns is None:
            raise RuntimeError("stopwatch was never started")
        self._elapsed_ns = self._clock.now_ns - self._start_ns
        return self._elapsed_ns

    @property
    def elapsed_ns(self) -> int:
        if self._elapsed_ns is None:
            raise RuntimeError("stopwatch not stopped yet")
        return self._elapsed_ns

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
