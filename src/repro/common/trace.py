"""Simulated-time tracing.

A :class:`Tracer` records spans (category, name, start, duration in
simulated ns) against the cluster's :class:`~repro.common.clock.SimClock`.
Instrumentation is opt-in — pass ``tracer=Tracer(clock)`` to
:class:`~repro.core.cluster.Cluster` — and exports to the Chrome trace
format (``chrome://tracing`` / Perfetto), which makes latency breakdowns
like Fig 6's "dominated by gRPC" claim directly visible on a timeline.
"""

from __future__ import annotations

import json
import os
from collections import deque
from dataclasses import dataclass, field
from typing import Iterator

from repro.common.clock import SimClock


@dataclass(frozen=True)
class TraceEvent:
    """One completed span of simulated time."""

    category: str
    name: str
    start_ns: int
    duration_ns: int
    track: str = ""  # node / channel the span ran on
    args: dict = field(default_factory=dict)


class Tracer:
    """Bounded in-memory span recorder.

    Two overflow policies:

    * ``ring=False`` (default) — keep the *oldest* ``max_events`` spans and
      drop later ones, preserving a run's warm-up exactly as before.
    * ``ring=True`` — keep the *newest* spans (a ring buffer), which is
      what post-mortem debugging of a long chaos run wants: the events
      leading up to the failure, not the boot sequence. Either way
      ``dropped`` counts the overflow, and a ring tracer surfaces it as a
      synthetic ``tracer/dropped`` instant at the start of :meth:`events`
      and the Chrome export so truncation is visible on the timeline.

    .. deprecated:: PR 8
        Ring mode is now a thin adapter over
        :class:`repro.obs.spans.FlightRecorder`, the one bounded
        event-recording path shared with the span tracing plane; new
        post-mortem instrumentation should use ``repro.obs.spans``
        directly (per-node rings, automatic dumps on simtest/chaos
        failures). The ``Tracer`` API and its Chrome export stay for the
        ``--trace`` CLI path and existing callers.
    """

    def __init__(self, clock: SimClock, max_events: int = 100_000, ring: bool = False):
        if max_events <= 0:
            raise ValueError("max_events must be positive")
        self._clock = clock
        self._max = max_events
        self._ring = ring
        self._recorder = None
        if ring:
            # Deferred import: repro.obs pulls in the metrics/export stack,
            # which this low-level module must not require at import time.
            from repro.obs.spans import FlightRecorder

            self._recorder = FlightRecorder(max_events)
            self._events: deque[TraceEvent] | list[TraceEvent] = self._recorder.ring
        else:
            self._events = []
        self.dropped = 0

    @property
    def ring(self) -> bool:
        return self._ring

    # -- recording -----------------------------------------------------------

    class _Span:
        __slots__ = ("_tracer", "_category", "_name", "_track", "_args", "_start")

        def __init__(self, tracer, category, name, track, args):
            self._tracer = tracer
            self._category = category
            self._name = name
            self._track = track
            self._args = args
            self._start = None

        def __enter__(self):
            self._start = self._tracer._clock.now_ns
            return self

        def __exit__(self, *exc):
            self._tracer._record(
                TraceEvent(
                    category=self._category,
                    name=self._name,
                    start_ns=self._start,
                    duration_ns=self._tracer._clock.now_ns - self._start,
                    track=self._track,
                    args=self._args,
                )
            )

    def span(self, category: str, name: str, track: str = "", **args) -> "_Span":
        """Context manager measuring the enclosed simulated time."""
        return Tracer._Span(self, category, name, track, args)

    def instant(self, category: str, name: str, track: str = "", **args) -> None:
        """A zero-duration marker."""
        self._record(
            TraceEvent(
                category=category,
                name=name,
                start_ns=self._clock.now_ns,
                duration_ns=0,
                track=track,
                args=args,
            )
        )

    def _record(self, event: TraceEvent) -> None:
        if self._recorder is not None:
            # Ring mode delegates bounded storage + drop accounting to the
            # shared flight recorder (eviction of the oldest on overflow).
            self._recorder.record(event)
            self.dropped = self._recorder.dropped
            return
        if len(self._events) >= self._max:
            self.dropped += 1
            return
        self._events.append(event)

    def _dropped_marker(self) -> TraceEvent | None:
        """A synthetic instant marking ring-buffer truncation."""
        if not self._ring or self.dropped == 0:
            return None
        oldest = self._events[0].start_ns if self._events else 0
        return TraceEvent(
            category="tracer",
            name="dropped",
            start_ns=oldest,
            duration_ns=0,
            track="tracer",
            args={"count": self.dropped},
        )

    # -- introspection ------------------------------------------------------------

    def events(self, category: str | None = None) -> list[TraceEvent]:
        marker = self._dropped_marker()
        out = [marker] if marker is not None else []
        out.extend(self._events)
        if category is None:
            return out
        return [e for e in out if e.category == category]

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def total_ns(self, category: str) -> int:
        return sum(e.duration_ns for e in self._events if e.category == category)

    def summary(self) -> dict[tuple[str, str], dict]:
        """Per (category, name): count and total simulated duration.

        A ring tracer that overflowed reports the drop count as a
        ``("tracer", "dropped")`` row so truncated totals are visibly
        incomplete rather than silently short.
        """
        out: dict[tuple[str, str], dict] = {}
        if self.dropped:
            out[("tracer", "dropped")] = {"count": self.dropped, "total_ns": 0}
        for event in self._events:
            key = (event.category, event.name)
            row = out.setdefault(key, {"count": 0, "total_ns": 0})
            row["count"] += 1
            row["total_ns"] += event.duration_ns
        return out

    def format_summary(self) -> str:
        lines = [f"{'category':<12} {'name':<24} {'count':>7} {'total ms':>10}"]
        for (category, name), row in sorted(
            self.summary().items(), key=lambda kv: -kv[1]["total_ns"]
        ):
            lines.append(
                f"{category:<12} {name:<24} {row['count']:>7} "
                f"{row['total_ns'] / 1e6:>10.3f}"
            )
        return "\n".join(lines)

    # -- export --------------------------------------------------------------------

    def to_chrome_trace(self) -> dict:
        """The Chrome trace-event JSON structure (complete 'X' events,
        timestamps in microseconds, one pid per track)."""
        trace_events = []
        for event in self.events():
            trace_events.append(
                {
                    "ph": "X",
                    "cat": event.category,
                    "name": event.name,
                    "ts": event.start_ns / 1e3,
                    "dur": event.duration_ns / 1e3,
                    "pid": event.track or "sim",
                    "tid": event.category,
                    "args": event.args,
                }
            )
        return {"traceEvents": trace_events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: "str | os.PathLike[str]") -> None:
        with open(os.fspath(path), "w", encoding="utf-8") as fh:
            json.dump(self.to_chrome_trace(), fh)
