"""Payload checksums for in-region object headers.

The integrity design calls for CRC32C (Castagnoli — the polynomial storage
systems standardised on because commodity CPUs accelerate it). The
simulation uses the hardware-accelerated ``crc32c`` package when the host
has it and otherwise falls back to :func:`zlib.crc32` (IEEE polynomial):
both are 32-bit CRCs with identical burst-error detection strength, and the
choice never crosses the wire — checksums are always computed and verified
against the same node-local implementation, so the fallback changes no
behaviour, only the constant folded into each header.

Checksum *time* is a store-config knob (``checksum_ns_per_byte``), charged
to the simulated clock by callers; computing the real CRC here is untimed
C-speed work, like every other byte movement in the simulation.
"""

from __future__ import annotations

import zlib

try:  # pragma: no cover - exercised only where the wheel is installed
    from crc32c import crc32c as _crc32c_hw

    CRC_IMPL = "crc32c"

    def crc32c(data, value: int = 0) -> int:
        """CRC-32C (Castagnoli) of *data*, seeded with *value*."""
        return _crc32c_hw(bytes(data) if isinstance(data, memoryview) else data, value)

except ImportError:  # the container's default path
    CRC_IMPL = "zlib-crc32"

    def crc32c(data, value: int = 0) -> int:
        """CRC-32 fallback (zlib, IEEE polynomial) with the CRC32C calling
        convention; see module docstring for why this is sound here."""
        return zlib.crc32(data, value) & 0xFFFFFFFF


def payload_crc(*chunks) -> int:
    """Checksum a sequence of buffers as one logical byte stream."""
    value = 0
    for chunk in chunks:
        if chunk:
            value = crc32c(chunk, value)
    return value
