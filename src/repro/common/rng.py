"""Deterministic randomness discipline.

Every stochastic element of the simulation — network jitter, payload
contents, id draws — flows from a :class:`DeterministicRng` derived from a
single experiment seed, so any run (and therefore any benchmark shape) is
exactly reproducible. Independent subsystems get independent streams via
:func:`derive_seed`, so adding a draw in one subsystem never perturbs
another.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(root_seed: int, *names: str) -> int:
    """Derive a child seed from *root_seed* and a path of stream names.

    Uses SHA-256 over the root seed and names so streams are statistically
    independent and stable across processes/runs.
    """
    h = hashlib.sha256()
    h.update(str(int(root_seed)).encode())
    for name in names:
        h.update(b"\x00")
        h.update(name.encode("utf-8"))
    return int.from_bytes(h.digest()[:8], "big")


class DeterministicRng:
    """A thin, explicit wrapper over :class:`numpy.random.Generator`.

    The wrapper exists so call sites never touch global NumPy random state
    and so streams can be split (`spawn`) by name.
    """

    def __init__(self, seed: int):
        self._seed = int(seed)
        self._gen = np.random.default_rng(self._seed)

    @property
    def seed(self) -> int:
        return self._seed

    def spawn(self, *names: str) -> "DeterministicRng":
        """Create an independent child stream identified by *names*."""
        return DeterministicRng(derive_seed(self._seed, *names))

    # -- draws ---------------------------------------------------------------

    def bytes(self, n: int) -> bytes:
        """*n* uniform random bytes."""
        return self._gen.bytes(n)

    def payload(self, n: int) -> np.ndarray:
        """A uint8 array of length *n* with uniform random contents.

        Benchmarks fill objects with random data (paper §IV-B: "commit
        Plasma objects with random data"); contents do not affect modelled
        performance but make corruption bugs visible.
        """
        return self._gen.integers(0, 256, size=n, dtype=np.uint8)

    def uniform(self, low: float, high: float) -> float:
        return float(self._gen.uniform(low, high))

    def normal(self, mean: float, std: float) -> float:
        return float(self._gen.normal(mean, std))

    def lognormal_jitter(self, sigma: float) -> float:
        """A multiplicative jitter factor with median 1.0.

        Log-normal jitter matches the long right tail of real network
        latencies (the paper attributes remote-retrieval variance to "gRPC
        and its inherent network jitter").
        """
        if sigma <= 0.0:
            return 1.0
        return float(self._gen.lognormal(mean=0.0, sigma=sigma))

    def integer(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high)``."""
        return int(self._gen.integers(low, high))

    def choice(self, seq: list) -> object:
        return seq[int(self._gen.integers(0, len(seq)))]

    def shuffle(self, seq: list) -> None:
        self._gen.shuffle(seq)
