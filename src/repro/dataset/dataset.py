"""The DistributedDataset implementation.

Execution model: the "driver" is whoever holds the dataset handle; every
partition-local computation is carried out by a long-lived worker client on
the partition's home node (narrow ops never move data), and wide ops move
payloads exclusively through disaggregated-memory reads.
"""

from __future__ import annotations

from typing import Callable, Iterable

import numpy as np

from repro.columnar import get_array, put_array
from repro.common.errors import ObjectStoreError
from repro.core.client import DisaggregatedClient
from repro.core.cluster import Cluster
from repro.dataset.partition import Partition


class DistributedDataset:
    """An immutable, partitioned collection of 1-D numpy arrays."""

    def __init__(self, cluster: Cluster, partitions: list[Partition]):
        if not partitions:
            raise ObjectStoreError("a dataset needs at least one partition")
        self._cluster = cluster
        self._partitions = list(partitions)

    # -- construction --------------------------------------------------------------

    @classmethod
    def from_arrays(
        cls,
        cluster: Cluster,
        arrays: Iterable[np.ndarray],
        placement: str = "round_robin",
    ) -> "DistributedDataset":
        """Commit *arrays* as partitions spread across the cluster.

        ``placement='round_robin'`` spreads partitions over all nodes;
        ``placement='single'`` homes everything on the first node (useful
        to demonstrate the remote-read path).
        """
        nodes = cluster.node_names()
        partitions: list[Partition] = []
        for index, array in enumerate(arrays):
            array = np.ascontiguousarray(array)
            if array.ndim != 1:
                raise ObjectStoreError("dataset partitions must be 1-D arrays")
            if placement == "round_robin":
                home = nodes[index % len(nodes)]
            elif placement == "single":
                home = nodes[0]
            else:
                raise ValueError(f"unknown placement {placement!r}")
            worker = cls._worker(cluster, home)
            oid = cluster.new_object_id()
            put_array(worker, oid, array)
            partitions.append(
                Partition(index=index, object_id=oid, home=home, rows=len(array))
            )
        if not partitions:
            raise ObjectStoreError("a dataset needs at least one partition")
        return cls(cluster, partitions)

    @classmethod
    def _worker(cls, cluster: Cluster, node: str) -> DisaggregatedClient:
        """One long-lived worker client per (cluster, node).

        The cache lives on the cluster object itself (not a module-level
        dict keyed by ``id()`` — CPython reuses ids across object
        lifetimes, which would hand a fresh cluster another cluster's
        workers).
        """
        cache: dict[str, DisaggregatedClient] = cluster.__dict__.setdefault(
            "_dataset_workers", {}
        )
        worker = cache.get(node)
        if worker is None:
            worker = cluster.client(node, f"dataset-worker@{node}")
            cache[node] = worker
        return worker

    # -- introspection ---------------------------------------------------------------

    @property
    def num_partitions(self) -> int:
        return len(self._partitions)

    @property
    def partitions(self) -> list[Partition]:
        return list(self._partitions)

    def partition_homes(self) -> dict[str, int]:
        homes: dict[str, int] = {}
        for p in self._partitions:
            homes[p.home] = homes.get(p.home, 0) + 1
        return homes

    def count(self) -> int:
        """Total rows (metadata only — no data movement)."""
        return sum(p.rows for p in self._partitions)

    # -- narrow transformations ---------------------------------------------------------

    def map_partitions(
        self, fn: Callable[[np.ndarray], np.ndarray]
    ) -> "DistributedDataset":
        """Apply *fn* to every partition on its home node; returns a new
        dataset whose partitions live on the same nodes (narrow dependency:
        zero cross-node traffic)."""
        out: list[Partition] = []
        for p in self._partitions:
            worker = self._worker(self._cluster, p.home)
            with get_array(worker, p.object_id) as ref:
                result = np.ascontiguousarray(fn(ref.array))
            if result.ndim != 1:
                raise ObjectStoreError("map_partitions must return 1-D arrays")
            oid = self._cluster.new_object_id()
            put_array(worker, oid, result)
            out.append(
                Partition(index=p.index, object_id=oid, home=p.home, rows=len(result))
            )
        return DistributedDataset(self._cluster, out)

    def map(self, fn: Callable[[np.ndarray], np.ndarray]) -> "DistributedDataset":
        """Element-wise map (a vectorised function over each partition)."""
        return self.map_partitions(fn)

    def filter(self, predicate: Callable[[np.ndarray], np.ndarray]) -> "DistributedDataset":
        """Keep rows where the (vectorised, boolean) predicate holds.

        Empty filtered partitions keep a single sentinel row removed at
        collect time? No — simpler and honest: partitions may not be empty
        (Plasma objects cannot be zero-sized), so an all-filtered partition
        raises; callers with sparse data should repartition first.
        """

        def apply(arr: np.ndarray) -> np.ndarray:
            kept = arr[predicate(arr)]
            if len(kept) == 0:
                raise ObjectStoreError(
                    "filter emptied a partition (zero-size objects are not "
                    "representable); coalesce or repartition first"
                )
            return kept

        return self.map_partitions(apply)

    # -- wide operations -------------------------------------------------------------------

    def reduce(
        self,
        partial: Callable[[np.ndarray], object],
        combine: Callable[[object, object], object],
    ) -> object:
        """Two-phase reduction: *partial* runs on each home node (local
        reads), the driver combines the partials (scalar metadata only —
        no payload crosses the fabric)."""
        acc: object | None = None
        for p in self._partitions:
            worker = self._worker(self._cluster, p.home)
            with get_array(worker, p.object_id) as ref:
                value = partial(ref.array)
            acc = value if acc is None else combine(acc, value)
        return acc

    def sum(self) -> float:
        return float(
            self.reduce(lambda a: float(a.sum()), lambda x, y: x + y)  # type: ignore[return-value]
        )

    def collect(self, on: str | None = None) -> np.ndarray:
        """Materialise the whole dataset on one node (default: the first).

        Remote partitions are read through ThymesisFlow — the wide(st)
        possible dependency.
        """
        node = on or self._cluster.node_names()[0]
        reader = self._worker(self._cluster, node)
        parts: list[np.ndarray] = []
        for p in sorted(self._partitions, key=lambda q: q.index):
            with get_array(reader, p.object_id) as ref:
                parts.append(ref.copy())
        return np.concatenate(parts)

    def shuffle_by(
        self,
        key_fn: Callable[[np.ndarray], np.ndarray],
        num_partitions: int | None = None,
    ) -> "DistributedDataset":
        """Wide-dependency repartition: rows move to the partition chosen by
        ``key_fn(values) % num_partitions``.

        Stage 1 (map side): each home worker splits its partition and
        commits one intermediate object per destination. Stage 2 (reduce
        side): each destination's worker gathers its intermediates —
        remote ones over the fabric — and commits the concatenation.
        """
        nodes = self._cluster.node_names()
        n_out = num_partitions or len(nodes)
        if n_out <= 0:
            raise ValueError("num_partitions must be positive")

        # Stage 1: map-side split. intermediates[dest] = list of (oid, home).
        intermediates: list[list[tuple]] = [[] for _ in range(n_out)]
        for p in self._partitions:
            worker = self._worker(self._cluster, p.home)
            with get_array(worker, p.object_id) as ref:
                values = ref.copy()
            dests = key_fn(values) % n_out
            for j in range(n_out):
                chunk = values[dests == j]
                if len(chunk) == 0:
                    continue
                oid = self._cluster.new_object_id()
                put_array(worker, oid, chunk)
                intermediates[j].append((oid, p.home))

        # Stage 2: reduce-side gather on each destination node.
        out: list[Partition] = []
        for j in range(n_out):
            home = nodes[j % len(nodes)]
            worker = self._worker(self._cluster, home)
            chunks: list[np.ndarray] = []
            for oid, _src in intermediates[j]:
                with get_array(worker, oid) as ref:
                    chunks.append(ref.copy())
            if not chunks:
                continue  # a destination with no rows simply has no partition
            merged = np.concatenate(chunks)
            oid = self._cluster.new_object_id()
            put_array(worker, oid, merged)
            out.append(
                Partition(index=len(out), object_id=oid, home=home, rows=len(merged))
            )
            # Intermediates are consumed; free them at their homes.
            for ioid, src in intermediates[j]:
                self._worker(self._cluster, src).delete(ioid)
        if not out:
            raise ObjectStoreError("shuffle produced no rows")
        return DistributedDataset(self._cluster, out)

    def sort(self, num_partitions: int | None = None) -> "DistributedDataset":
        """Distributed sort by value: sample-based range partitioning.

        1. every partition contributes a small sample (read at home);
        2. the driver derives ``n-1`` splitters from the pooled sample;
        3. a shuffle routes each row to its range bucket;
        4. each bucket sorts locally (narrow).

        ``collect()`` of the result is globally sorted; imbalance is
        bounded by sample quality, as in any sampling sort (TeraSort et
        al.).
        """
        nodes = self._cluster.node_names()
        n_out = num_partitions or len(nodes)
        if n_out <= 0:
            raise ValueError("num_partitions must be positive")

        # Stage 0: sampling (metadata-scale reads).
        per_partition = max(32, 16 * n_out)
        samples: list[np.ndarray] = []
        for p in self._partitions:
            worker = self._worker(self._cluster, p.home)
            with get_array(worker, p.object_id) as ref:
                arr = ref.array
                stride = max(1, len(arr) // per_partition)
                samples.append(np.array(arr[::stride], copy=True))
        pooled = np.sort(np.concatenate(samples))
        quantiles = np.linspace(0, 1, n_out + 1)[1:-1]
        splitters = np.quantile(pooled, quantiles) if n_out > 1 else np.array([])

        # Stages 1-2: route rows to their range bucket; 'key % n_out' is the
        # identity because searchsorted already yields bucket indices.
        bucketed = self.shuffle_by(
            lambda values: np.searchsorted(splitters, values, side="right"),
            num_partitions=n_out,
        )
        # Stage 3: sort each bucket where it lives.
        return bucketed.map_partitions(np.sort)

    # -- lifecycle -----------------------------------------------------------------------

    def drop(self) -> None:
        """Delete every partition object (the dataset handle is dead after)."""
        for p in self._partitions:
            self._worker(self._cluster, p.home).delete(p.object_id)
        self._partitions = []

    def __repr__(self) -> str:
        return (
            f"DistributedDataset({self.num_partitions} partitions, "
            f"{sum(p.rows for p in self._partitions)} rows, "
            f"homes={self.partition_homes()})"
        )
