"""Partition descriptors."""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.ids import ObjectID


@dataclass(frozen=True)
class Partition:
    """One immutable partition: an array object homed on one node."""

    index: int
    object_id: ObjectID
    home: str
    rows: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError("partition indices are non-negative")
        if self.rows < 0:
            raise ValueError("row counts are non-negative")
