"""A minimal distributed-dataset programming model on the store.

The paper positions the framework as infrastructure for big-data engines —
its §II-B explicitly parallels Plasma's immutability with Spark's RDDs, and
§V-B calls out wide-dependency operations as the interesting workload. This
package is that programming model, built *only* on the public store API:

* a :class:`DistributedDataset` is a list of immutable partitions, each an
  object in some node's disaggregated memory;
* **narrow** operations (:meth:`~DistributedDataset.map_partitions`,
  :meth:`~DistributedDataset.filter`) run on each partition's home node —
  purely local reads and writes;
* **wide** operations (:meth:`~DistributedDataset.shuffle_by`,
  :meth:`~DistributedDataset.reduce`, :meth:`~DistributedDataset.collect`)
  cross nodes — and all cross-node traffic is ThymesisFlow reads of sealed
  objects, never LAN payload copies.

Datasets are immutable: every transformation produces new objects, exactly
the RDD discipline Plasma's sealing supports.
"""

from repro.dataset.partition import Partition
from repro.dataset.dataset import DistributedDataset

__all__ = ["Partition", "DistributedDataset"]
