"""Deterministic fault injection for the disaggregated cluster.

Survey work on memory disaggregation names failure resilience of remote
memory as the top open problem for production deployments; the paper's own
prototype assumes both nodes stay up. This package supplies the missing
failure *model*: a :class:`FaultPlan` schedules node crashes, link
partitions, link degradation and RPC blackhole windows against the
cluster's simulated clock, and a :class:`ChaosRuntime` applies them to the
live components (RPC servers, OpenCAPI links, the LAN) as simulated time
passes.

Everything is driven by the same seed discipline as the rest of the
framework, so a chaos run — fault timeline, per-call outcomes, counters —
is exactly reproducible. Pair with :mod:`repro.core.health` (failure
detection, deadlines, circuit breakers) and the store's replication mode to
measure *degraded-mode* behaviour, not just steady state::

    from repro import Cluster
    from repro.chaos import FaultPlan, NodeCrash

    plan = FaultPlan([NodeCrash(at_ns=50_000_000, node="node1")])
    cluster = Cluster(n_nodes=2, fault_plan=plan)
    # ... run a workload; node1's store dies 50 simulated ms in.
"""

from repro.chaos.plan import (
    BitFlip,
    FaultEvent,
    FaultPlan,
    LinkDegrade,
    LinkHeal,
    LinkPartition,
    LinkRestore,
    NodeCrash,
    NodeRestart,
    OverloadBurst,
    RpcBlackhole,
)
from repro.chaos.runtime import ChaosRuntime

__all__ = [
    "FaultEvent",
    "FaultPlan",
    "NodeCrash",
    "NodeRestart",
    "LinkPartition",
    "LinkHeal",
    "LinkDegrade",
    "LinkRestore",
    "RpcBlackhole",
    "BitFlip",
    "OverloadBurst",
    "ChaosRuntime",
]
