"""Fault plans: the *what happens when* of a chaos run.

A :class:`FaultPlan` is an immutable, time-ordered schedule of fault events
against the cluster's simulated clock. Because event times are plain
simulated nanoseconds and plan synthesis draws only from a
:class:`~repro.common.rng.DeterministicRng`, a (seed, plan) pair replays the
exact same fault timeline on every run — chaos experiments are as
reproducible as the paper's benchmarks.

Event taxonomy (what each one models):

* :class:`NodeCrash` / :class:`NodeRestart` — the store *process* on a node
  dies / comes back. Metadata RPCs to a crashed node answer UNAVAILABLE;
  its exposed memory stays readable over the fabric (the disaggregation
  asymmetry the paper's design creates).
* :class:`LinkPartition` / :class:`LinkHeal` — the ThymesisFlow link (and
  any RPC path) between two nodes goes away entirely: fabric accesses raise
  :class:`~repro.common.errors.LinkPartitionedError`, RPC attempts are
  swallowed (the client waits out its deadline/timeout).
* :class:`LinkDegrade` / :class:`LinkRestore` — the link stays up but slow:
  bandwidth is multiplied by ``bandwidth_factor`` (< 1) and latency by
  ``latency_factor`` (> 1).
* :class:`RpcBlackhole` — a one-way RPC silence window: attempts from
  ``src`` to ``dst`` (``"*"`` wildcards either side) vanish without a
  response for ``duration_ns``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields
from typing import Iterable, Iterator

from repro.common.config import ChaosConfig
from repro.common.rng import DeterministicRng


@dataclass(frozen=True)
class FaultEvent:
    """Base class: something scheduled to happen at ``at_ns``."""

    at_ns: int

    def __post_init__(self) -> None:
        if self.at_ns < 0:
            raise ValueError("fault events cannot be scheduled before t=0")

    def describe(self) -> str:
        parts = [
            f"{f.name}={getattr(self, f.name)!r}"
            for f in fields(self)
            if f.name != "at_ns"
        ]
        return (
            f"t={self.at_ns / 1e6:10.3f} ms  {type(self).__name__}"
            + (f"({', '.join(parts)})" if parts else "")
        )


@dataclass(frozen=True)
class NodeCrash(FaultEvent):
    """The store process on *node* dies (RpcServer.shutdown)."""

    node: str = ""

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.node:
            raise ValueError("NodeCrash needs a node name")


@dataclass(frozen=True)
class NodeRestart(FaultEvent):
    """The store process on *node* comes back (RpcServer.restart)."""

    node: str = ""

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.node:
            raise ValueError("NodeRestart needs a node name")


@dataclass(frozen=True)
class _LinkEvent(FaultEvent):
    node_a: str = ""
    node_b: str = ""

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.node_a or not self.node_b or self.node_a == self.node_b:
            raise ValueError(
                f"{type(self).__name__} needs two distinct node names"
            )

    @property
    def pair(self) -> frozenset:
        return frozenset((self.node_a, self.node_b))


@dataclass(frozen=True)
class LinkPartition(_LinkEvent):
    """The fabric link (and RPC path) between two nodes is severed."""


@dataclass(frozen=True)
class LinkHeal(_LinkEvent):
    """A partitioned link comes back."""


@dataclass(frozen=True)
class LinkDegrade(_LinkEvent):
    """The link stays up but slower: bandwidth x factor, latency x factor."""

    bandwidth_factor: float = 0.25
    latency_factor: float = 4.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.bandwidth_factor <= 1.0:
            raise ValueError("bandwidth_factor must be in (0, 1]")
        if self.latency_factor < 1.0:
            raise ValueError("latency_factor must be >= 1")


@dataclass(frozen=True)
class LinkRestore(_LinkEvent):
    """Degradation ends; the link returns to calibrated speed."""


@dataclass(frozen=True)
class BitFlip(FaultEvent):
    """In-region silent data corruption: flip bit *bit* of the byte at
    exposed-region offset *offset* on *node* (cosmic ray / DRAM fault /
    fabric-DMA corruption — the failure class the anti-entropy scrubber
    exists to catch).

    Targeted, not synthesised: :meth:`FaultPlan.random` never draws one,
    because a meaningful flip needs an offset inside a live object, which
    only the experiment knows.
    """

    node: str = ""
    offset: int = 0
    bit: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.node:
            raise ValueError("BitFlip needs a node name")
        if self.offset < 0:
            raise ValueError("BitFlip offset must be non-negative")
        if not 0 <= self.bit <= 7:
            raise ValueError("BitFlip bit must be in [0, 7]")


@dataclass(frozen=True)
class OverloadBurst(FaultEvent):
    """Inject ``backlog_ms`` of queued work into *node*'s request queue:
    models a stall — a GC pause, a compaction, a noisy neighbour's burst —
    that the server's admission model then drains at its service rate,
    shedding (RESOURCE_EXHAUSTED) whatever the bounded queue cannot hold.

    Targeted, not synthesised: :meth:`FaultPlan.random` never draws one,
    because a meaningful burst size depends on the service rate and queue
    depth the experiment configured.
    """

    node: str = ""
    backlog_ms: float = 10.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.node:
            raise ValueError("OverloadBurst needs a node name")
        if self.backlog_ms <= 0:
            raise ValueError("OverloadBurst needs a positive backlog")


@dataclass(frozen=True)
class RpcBlackhole(FaultEvent):
    """RPC attempts from *src* to *dst* are silently dropped for
    ``duration_ns`` (no response; the caller waits out its timeout).
    ``"*"`` wildcards a side."""

    src: str = "*"
    dst: str = "*"
    duration_ns: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.duration_ns <= 0:
            raise ValueError("RpcBlackhole needs a positive duration")

    @property
    def until_ns(self) -> int:
        return self.at_ns + self.duration_ns


class FaultPlan:
    """An ordered, validated schedule of :class:`FaultEvent`\\ s."""

    def __init__(self, events: Iterable[FaultEvent] = ()):
        materialised = tuple(events)
        for event in materialised:
            if not isinstance(event, FaultEvent):
                raise TypeError(f"not a FaultEvent: {event!r}")
        self._events: tuple[FaultEvent, ...] = tuple(
            sorted(materialised, key=lambda e: (e.at_ns, repr(e)))
        )

    # -- construction -----------------------------------------------------------

    def add(self, *events: FaultEvent) -> "FaultPlan":
        """A new plan with *events* merged in (plans are immutable)."""
        return FaultPlan(self._events + events)

    @classmethod
    def random(
        cls,
        seed: int,
        node_names: list[str],
        horizon_ns: int,
        *,
        n_events: int = 4,
        config: ChaosConfig | None = None,
    ) -> "FaultPlan":
        """Synthesise a plan deterministically from *seed*.

        Each event picks a kind, a time in ``[horizon/10, horizon)`` and an
        outage duration (exponential around ``config.mean_outage_ns``);
        crash/partition/degrade events get a matching recovery event when
        the outage ends inside the horizon. Same seed, nodes and horizon →
        identical plan, run after run.
        """
        if len(node_names) < 2:
            raise ValueError("a fault plan needs >= 2 nodes to be interesting")
        if horizon_ns <= 0:
            raise ValueError("horizon must be positive")
        cfg = config or ChaosConfig()
        rng = DeterministicRng(seed).spawn("chaos-plan")
        events: list[FaultEvent] = []
        kinds = ("crash", "partition", "degrade", "blackhole")
        for _ in range(n_events):
            kind = rng.choice(list(kinds))
            at = rng.integer(horizon_ns // 10, horizon_ns)
            # Exponential outage via inverse-CDF on a uniform draw.
            u = max(rng.uniform(0.0, 1.0), 1e-12)
            outage = int(-math.log(u) * cfg.mean_outage_ns) + 1
            node = str(rng.choice(list(node_names)))
            others = [n for n in node_names if n != node]
            peer = str(rng.choice(others))
            if kind == "crash":
                events.append(NodeCrash(at, node))
                if at + outage < horizon_ns:
                    events.append(NodeRestart(at + outage, node))
            elif kind == "partition":
                events.append(LinkPartition(at, node, peer))
                if at + outage < horizon_ns:
                    events.append(LinkHeal(at + outage, node, peer))
            elif kind == "degrade":
                events.append(
                    LinkDegrade(
                        at,
                        node,
                        peer,
                        bandwidth_factor=cfg.degrade_bandwidth_factor,
                        latency_factor=cfg.degrade_latency_factor,
                    )
                )
                if at + outage < horizon_ns:
                    events.append(LinkRestore(at + outage, node, peer))
            else:
                events.append(RpcBlackhole(at, node, peer, duration_ns=outage))
        return cls(events)

    # -- introspection ----------------------------------------------------------

    @property
    def events(self) -> tuple[FaultEvent, ...]:
        return self._events

    def validate(self, node_names: Iterable[str]) -> None:
        """Check every event references a known node."""
        known = set(node_names)
        for event in self._events:
            names: list[str] = []
            if isinstance(event, (NodeCrash, NodeRestart, BitFlip, OverloadBurst)):
                names = [event.node]
            elif isinstance(event, _LinkEvent):
                names = [event.node_a, event.node_b]
            elif isinstance(event, RpcBlackhole):
                names = [n for n in (event.src, event.dst) if n != "*"]
            for name in names:
                if name not in known:
                    raise ValueError(
                        f"fault plan references unknown node {name!r} "
                        f"(cluster has {sorted(known)})"
                    )

    def describe(self) -> str:
        """Human-readable timeline (the chaos CLI prints this)."""
        if not self._events:
            return "(empty fault plan)"
        return "\n".join(event.describe() for event in self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self._events)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FaultPlan) and self._events == other._events

    def __repr__(self) -> str:
        return f"FaultPlan({len(self._events)} events)"
