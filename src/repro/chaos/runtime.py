"""The chaos runtime: applies a :class:`~repro.chaos.plan.FaultPlan` to a
running cluster as simulated time passes.

The simulation is synchronous — there is no background thread to fire
events — so the runtime is *polled*: every instrumented component (RPC
channels, OpenCAPI links, the LAN) calls :meth:`ChaosRuntime.poll` before
charging work, which applies every event whose time has come. Events
therefore take effect at the first modelled operation at-or-after their
scheduled instant, which is exactly when a fault becomes *observable* in a
discrete-event world.

Determinism: event application order is fixed by the plan, component state
mutations are pure functions of the event, and the applied-event log can be
compared across runs (the chaos benchmarks assert byte-identical
timelines).
"""

from __future__ import annotations

from collections import deque

from repro.common.clock import SimClock
from repro.common.config import ChaosConfig
from repro.chaos.plan import (
    BitFlip,
    FaultEvent,
    FaultPlan,
    LinkDegrade,
    LinkHeal,
    LinkPartition,
    LinkRestore,
    NodeCrash,
    NodeRestart,
    OverloadBurst,
    RpcBlackhole,
)


class ChaosRuntime:
    """Applies fault events to attached components and answers reachability
    queries for the RPC layer."""

    def __init__(
        self,
        plan: FaultPlan,
        clock: SimClock,
        config: ChaosConfig | None = None,
        tracer=None,
    ):
        self._plan = plan
        self._clock = clock
        self._config = config or ChaosConfig()
        self._tracer = tracer
        self._pending: deque[FaultEvent] = deque(plan.events)
        self.applied: list[FaultEvent] = []
        self._servers: dict[str, object] = {}   # node -> RpcServer
        self._regions: dict[str, object] = {}   # node -> exposed MemoryRegion
        self._links: dict[frozenset, object] = {}  # {a,b} -> OpenCapiLink
        self._networks: list = []
        self._crashed: set[str] = set()
        self._partitioned: set[frozenset] = set()
        self._blackholes: list[RpcBlackhole] = []

    # -- wiring ------------------------------------------------------------------

    @property
    def plan(self) -> FaultPlan:
        return self._plan

    @property
    def config(self) -> ChaosConfig:
        return self._config

    @property
    def unanswered_wait_ns(self) -> float:
        """How long a swallowed RPC attempt costs the caller (capped by any
        per-call deadline at the channel)."""
        return self._config.blackhole_timeout_ns

    def attach_server(self, node: str, server) -> None:
        self._servers[node] = server

    def attach_region(self, node: str, region) -> None:
        """Register a node's exposed memory so BitFlip events can corrupt
        it in place (offsets in the plan are exposed-region-relative)."""
        self._regions[node] = region

    def attach_link(self, link) -> None:
        self._links[link.endpoints] = link
        link.chaos = self

    def attach_network(self, network) -> None:
        self._networks.append(network)
        network.chaos = self

    def inject(self, *events: FaultEvent) -> None:
        """Merge targeted events into the pending schedule at runtime.

        Some faults cannot be planned up front — a :class:`BitFlip` needs
        an offset inside a live object, which exists only after the
        workload has run. Injection keeps determinism: the merged schedule
        is re-sorted by the same (time, repr) key plan construction uses.
        """
        for event in events:
            if not isinstance(event, FaultEvent):
                raise TypeError(f"not a FaultEvent: {event!r}")
        self._pending = deque(
            sorted((*self._pending, *events), key=lambda e: (e.at_ns, repr(e)))
        )

    # -- event application ---------------------------------------------------------

    def poll(self) -> int:
        """Apply every event due at the current simulated time; returns how
        many were applied."""
        now = self._clock.now_ns
        applied = 0
        while self._pending and self._pending[0].at_ns <= now:
            event = self._pending.popleft()
            self._apply(event)
            self.applied.append(event)
            applied += 1
        return applied

    def _apply(self, event: FaultEvent) -> None:
        if self._tracer is not None:
            self._tracer.instant(
                "chaos", type(event).__name__, track="chaos", detail=event.describe()
            )
        if isinstance(event, NodeCrash):
            self._crashed.add(event.node)
            server = self._servers.get(event.node)
            if server is not None:
                server.shutdown()
        elif isinstance(event, NodeRestart):
            self._crashed.discard(event.node)
            server = self._servers.get(event.node)
            if server is not None:
                server.restart()
        elif isinstance(event, LinkPartition):
            self._partitioned.add(event.pair)
            link = self._links.get(event.pair)
            if link is not None:
                link.set_partitioned(True)
        elif isinstance(event, LinkHeal):
            self._partitioned.discard(event.pair)
            link = self._links.get(event.pair)
            if link is not None:
                link.set_partitioned(False)
        elif isinstance(event, LinkDegrade):
            link = self._links.get(event.pair)
            if link is not None:
                link.set_degradation(
                    bandwidth_factor=event.bandwidth_factor,
                    latency_factor=event.latency_factor,
                )
        elif isinstance(event, LinkRestore):
            link = self._links.get(event.pair)
            if link is not None:
                link.set_degradation(bandwidth_factor=1.0, latency_factor=1.0)
        elif isinstance(event, RpcBlackhole):
            self._blackholes.append(event)
        elif isinstance(event, BitFlip):
            region = self._regions.get(event.node)
            if region is not None:
                view = region.view(event.offset, 1)
                view[0] ^= 1 << event.bit
        elif isinstance(event, OverloadBurst):
            server = self._servers.get(event.node)
            overload = getattr(server, "overload", None)
            if overload is not None:
                overload.add_backlog(event.backlog_ms * 1e6)
        else:  # pragma: no cover - plan validation prevents this
            raise TypeError(f"unknown fault event {event!r}")

    # -- queries -----------------------------------------------------------------

    def node_crashed(self, node: str) -> bool:
        return node in self._crashed

    def partitioned(self, node_a: str, node_b: str) -> bool:
        return frozenset((node_a, node_b)) in self._partitioned

    def rpc_allowed(self, src: str, dst: str) -> bool:
        """False while a transport-level fault swallows src→dst attempts
        (partition or active blackhole window). A *crashed* destination is
        deliberately not handled here: its RpcServer answers UNAVAILABLE
        itself, modelling a connection refused rather than a silent drop.
        """
        if self.partitioned(src, dst):
            return False
        now = self._clock.now_ns
        for hole in self._blackholes:
            if hole.at_ns <= now < hole.until_ns:
                if hole.src in ("*", src) and hole.dst in ("*", dst):
                    return False
        return True

    def pending_events(self) -> int:
        return len(self._pending)

    def timeline(self) -> list[str]:
        """Applied events, in application order (deterministic across
        same-seed runs)."""
        return [event.describe() for event in self.applied]

    def __repr__(self) -> str:
        return (
            f"ChaosRuntime(applied={len(self.applied)}, "
            f"pending={len(self._pending)}, crashed={sorted(self._crashed)})"
        )
