"""Memory-disaggregated in-memory object store framework.

A full reproduction of *"Memory-Disaggregated In-Memory Object Store
Framework for Big Data Applications"* (Abrahamse, Hadnagy, Al-Ars; IPDPS
workshops 2022): a distributed variant of the Apache Arrow Plasma object
store whose stores allocate objects in ThymesisFlow disaggregated memory,
share metadata over gRPC-style RPC, and let clients on any node consume any
object — remote payloads travel over the memory fabric, never the LAN.

Quickstart::

    from repro import Cluster

    cluster = Cluster(n_nodes=2)
    producer = cluster.client("node0")
    consumer = cluster.client("node1")

    oid = cluster.new_object_id()
    producer.put_bytes(oid, b"hello, disaggregated world")
    print(consumer.get_bytes(oid))   # read through ThymesisFlow

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.chaos import FaultPlan
from repro.common.config import (
    ChaosConfig,
    ClusterConfig,
    FabricLinkConfig,
    HealthConfig,
    IpcConfig,
    LanConfig,
    LocalMemoryConfig,
    PlacementConfig,
    RpcConfig,
    StoreConfig,
)
from repro.common.ids import ObjectID
from repro.common.errors import (
    IntegrityError,
    ObjectCorruptedError,
    ObjectExistsError,
    ObjectNotFoundError,
    ObjectStoreError,
    ObjectUnavailableError,
    OutOfMemoryError,
    PlacementError,
    ReproError,
    StaleDescriptorError,
)
from repro.placement import (
    HashRing,
    Membership,
    MigrationEngine,
    NodeStatus,
    Rebalancer,
    TopologyView,
)
from repro.obs import CorrelationContext, MetricsRegistry, Telemetry
from repro.core import Cluster, DisaggregatedClient, DisaggregatedStore
from repro.baseline import ScaleOutCluster
from repro.plasma import PlasmaBuffer, PlasmaClient, PlasmaStore
from repro.scrub import Scrubber, ScrubReport
from repro.columnar import get_array, get_table, put_array, put_table
from repro.dataset import DistributedDataset

__version__ = "1.0.0"

__all__ = [
    "Cluster",
    "DisaggregatedClient",
    "DisaggregatedStore",
    "ScaleOutCluster",
    "PlasmaBuffer",
    "PlasmaClient",
    "PlasmaStore",
    "ObjectID",
    "ClusterConfig",
    "StoreConfig",
    "LocalMemoryConfig",
    "FabricLinkConfig",
    "IpcConfig",
    "RpcConfig",
    "LanConfig",
    "HealthConfig",
    "ChaosConfig",
    "PlacementConfig",
    "FaultPlan",
    "MetricsRegistry",
    "Telemetry",
    "CorrelationContext",
    "ReproError",
    "ObjectStoreError",
    "ObjectExistsError",
    "ObjectNotFoundError",
    "ObjectUnavailableError",
    "OutOfMemoryError",
    "IntegrityError",
    "StaleDescriptorError",
    "ObjectCorruptedError",
    "PlacementError",
    "NodeStatus",
    "TopologyView",
    "Membership",
    "HashRing",
    "MigrationEngine",
    "Rebalancer",
    "Scrubber",
    "ScrubReport",
    "put_array",
    "get_array",
    "put_table",
    "get_table",
    "DistributedDataset",
    "__version__",
]
