"""Allocator construction by configuration name."""

from __future__ import annotations

from repro.allocator.base import Allocator
from repro.allocator.buddy import BuddyAllocator
from repro.allocator.dlmalloc import DlMallocAllocator
from repro.allocator.first_fit import FirstFitAllocator

ALLOCATOR_NAMES = ("first_fit", "dlmalloc", "buddy")

_REGISTRY = {
    "first_fit": FirstFitAllocator,
    "dlmalloc": DlMallocAllocator,
    "buddy": BuddyAllocator,
}


def create_allocator(name: str, capacity: int, alignment: int = 64) -> Allocator:
    """Instantiate the allocator *name* ('first_fit', 'dlmalloc', 'buddy').

    'first_fit' is the paper's replacement allocator and the store default.
    """
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown allocator {name!r}; choose one of {ALLOCATOR_NAMES}"
        ) from None
    return cls(capacity, alignment)
