"""Allocator interface and shared free-list machinery.

Allocators manage an abstract offset space ``[0, capacity)``; the store
composes an allocator with a :class:`~repro.memory.host.MemoryRegion` to
place real bytes. Keeping allocators memory-agnostic makes them unit-testable
in isolation and lets the ablation benchmarks replay identical traces
through each strategy.
"""

from __future__ import annotations

import bisect
from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.common.errors import AllocationError, OutOfMemoryError


@dataclass(frozen=True)
class Allocation:
    """A live allocation: *size* is what the caller asked for,
    *padded_size* what the allocator reserved (alignment / block rounding)."""

    offset: int
    size: int
    padded_size: int

    def __post_init__(self) -> None:
        if self.offset < 0 or self.size <= 0 or self.padded_size < self.size:
            raise ValueError(f"invalid allocation {self!r}")

    @property
    def end(self) -> int:
        return self.offset + self.padded_size


@dataclass(frozen=True)
class AllocatorStats:
    """Point-in-time allocator statistics."""

    capacity: int
    used_bytes: int
    free_bytes: int
    largest_free: int
    num_allocations: int
    num_free_blocks: int
    total_allocs: int
    total_frees: int
    failed_allocs: int

    @property
    def utilization(self) -> float:
        return self.used_bytes / self.capacity if self.capacity else 0.0

    @property
    def external_fragmentation(self) -> float:
        """1 - largest_free/total_free: 0 when all free space is one run."""
        if self.free_bytes == 0:
            return 0.0
        return 1.0 - self.largest_free / self.free_bytes


def align_up(value: int, alignment: int) -> int:
    """Round *value* up to a multiple of *alignment* (a power of two)."""
    return (value + alignment - 1) & ~(alignment - 1)


class FreeList:
    """Free blocks indexed two ways: by offset (for coalescing) and by
    ``(size, offset)`` (for logarithmic fit lookup — the paper's "ordered
    map ... of the sizes of available regions").

    Both indexes are sorted lists maintained with :mod:`bisect`; operations
    are O(log n) search + O(n) worst-case list shuffle, which measures as
    effectively logarithmic at the block counts the store produces.
    """

    def __init__(self) -> None:
        self._by_offset: list[tuple[int, int]] = []  # (offset, size)
        self._by_size: list[tuple[int, int]] = []  # (size, offset)

    def __len__(self) -> int:
        return len(self._by_offset)

    def __iter__(self):
        return iter(self._by_offset)

    @property
    def total_bytes(self) -> int:
        return sum(size for _, size in self._by_offset)

    @property
    def largest(self) -> int:
        return self._by_size[-1][0] if self._by_size else 0

    def insert(self, offset: int, size: int) -> None:
        bisect.insort(self._by_offset, (offset, size))
        bisect.insort(self._by_size, (size, offset))

    def _remove(self, offset: int, size: int) -> None:
        i = bisect.bisect_left(self._by_offset, (offset, size))
        if i >= len(self._by_offset) or self._by_offset[i] != (offset, size):
            raise AllocationError(f"free block ({offset}, {size}) not found")
        del self._by_offset[i]
        j = bisect.bisect_left(self._by_size, (size, offset))
        del self._by_size[j]

    def insert_coalescing(self, offset: int, size: int) -> None:
        """Insert a block, merging with adjacent free neighbours."""
        i = bisect.bisect_left(self._by_offset, (offset, 0))
        # Merge with successor.
        if i < len(self._by_offset):
            nxt_off, nxt_size = self._by_offset[i]
            if nxt_off < offset + size:
                raise AllocationError(
                    f"double free or overlap: [{offset},{offset+size}) vs "
                    f"free block [{nxt_off},{nxt_off+nxt_size})"
                )
            if nxt_off == offset + size:
                self._remove(nxt_off, nxt_size)
                size += nxt_size
        # Merge with predecessor.
        if i > 0:
            prev_off, prev_size = self._by_offset[i - 1]
            if prev_off + prev_size > offset:
                raise AllocationError(
                    f"double free or overlap: [{offset},{offset+size}) vs "
                    f"free block [{prev_off},{prev_off+prev_size})"
                )
            if prev_off + prev_size == offset:
                self._remove(prev_off, prev_size)
                offset = prev_off
                size += prev_size
        self.insert(offset, size)

    def take_fit(self, size: int) -> tuple[int, int] | None:
        """Remove and return the block the paper's strategy picks: the entry
        found by logarithmic lookup in the size-ordered map — the *smallest*
        block that can accommodate the request (ties broken by lowest
        offset). Returns ``(offset, block_size)`` or ``None``."""
        i = bisect.bisect_left(self._by_size, (size, -1))
        if i >= len(self._by_size):
            return None
        block_size, offset = self._by_size[i]
        self._remove(offset, block_size)
        return offset, block_size

    def take_lowest_addr_fit(self, size: int) -> tuple[int, int] | None:
        """Classic address-ordered first fit (linear scan); used by the
        dlmalloc-style allocator's large path and available for comparison."""
        for offset, block_size in self._by_offset:
            if block_size >= size:
                self._remove(offset, block_size)
                return offset, block_size
        return None

    def blocks(self) -> list[tuple[int, int]]:
        return list(self._by_offset)


class Allocator(ABC):
    """Abstract allocator over ``[0, capacity)``."""

    def __init__(self, capacity: int, alignment: int = 64):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if alignment <= 0 or alignment & (alignment - 1):
            raise ValueError("alignment must be a positive power of two")
        self._capacity = capacity
        self._alignment = alignment
        self._live: dict[int, Allocation] = {}
        self._used_bytes = 0
        self._total_allocs = 0
        self._total_frees = 0
        self._failed_allocs = 0

    # -- abstract core ---------------------------------------------------------

    @abstractmethod
    def _do_allocate(self, padded_size: int) -> tuple[int, int]:
        """Reserve *padded_size* bytes; return ``(offset, reserved_size)``.
        Raise :class:`OutOfMemoryError` on failure."""

    @abstractmethod
    def _do_free(self, alloc: Allocation) -> None:
        """Return a reservation to the free pool."""

    @property
    @abstractmethod
    def largest_free(self) -> int:
        """Size of the largest contiguous free run."""

    @property
    @abstractmethod
    def num_free_blocks(self) -> int:
        ...

    # -- public API --------------------------------------------------------------

    def allocate(self, size: int) -> Allocation:
        """Allocate *size* bytes (padded to the configured alignment)."""
        if size <= 0:
            raise AllocationError(f"allocation size must be positive, got {size}")
        padded = align_up(size, self._alignment)
        try:
            offset, reserved = self._do_allocate(padded)
        except OutOfMemoryError:
            self._failed_allocs += 1
            raise
        alloc = Allocation(offset=offset, size=size, padded_size=reserved)
        self._live[offset] = alloc
        self._used_bytes += reserved
        self._total_allocs += 1
        return alloc

    def free(self, offset: int) -> None:
        """Free the allocation starting at *offset*."""
        alloc = self._live.pop(offset, None)
        if alloc is None:
            raise AllocationError(f"no live allocation at offset {offset}")
        self._do_free(alloc)
        self._used_bytes -= alloc.padded_size
        self._total_frees += 1

    def reserve(self, offset: int, size: int) -> Allocation:
        """Claim the specific range ``[offset, offset + align_up(size))`` out
        of the free pool — the restart-recovery primitive: a region scan
        finds surviving extents at fixed offsets and re-registers them.

        Raises :class:`AllocationError` if the range is not entirely free.
        Subclasses that cannot support placement raise NotImplementedError.
        """
        if size <= 0:
            raise AllocationError(f"reservation size must be positive, got {size}")
        if offset % self._alignment:
            raise AllocationError(
                f"reservation offset {offset} not {self._alignment}-byte aligned"
            )
        padded = align_up(size, self._alignment)
        if offset + padded > self._capacity:
            raise AllocationError(
                f"reservation [{offset}, {offset + padded}) exceeds capacity "
                f"{self._capacity}"
            )
        self._do_reserve(offset, padded)
        alloc = Allocation(offset=offset, size=size, padded_size=padded)
        self._live[offset] = alloc
        self._used_bytes += padded
        self._total_allocs += 1
        return alloc

    def _do_reserve(self, offset: int, padded_size: int) -> None:
        """Carve ``[offset, offset + padded_size)`` out of the free pool.
        Raise :class:`AllocationError` if any part is not free."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support placed reservations"
        )

    # -- introspection --------------------------------------------------------------

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def alignment(self) -> int:
        return self._alignment

    @property
    def used_bytes(self) -> int:
        return self._used_bytes

    @property
    def free_bytes(self) -> int:
        return self._capacity - self._used_bytes

    @property
    def num_allocations(self) -> int:
        return len(self._live)

    def live_allocations(self) -> list[Allocation]:
        return sorted(self._live.values(), key=lambda a: a.offset)

    def stats(self) -> AllocatorStats:
        return AllocatorStats(
            capacity=self._capacity,
            used_bytes=self._used_bytes,
            free_bytes=self.free_bytes,
            largest_free=self.largest_free,
            num_allocations=len(self._live),
            num_free_blocks=self.num_free_blocks,
            total_allocs=self._total_allocs,
            total_frees=self._total_frees,
            failed_allocs=self._failed_allocs,
        )

    def audit(self) -> None:
        """Verify structural invariants; raises AssertionError on violation.

        Checks that live allocations are disjoint, in bounds, and that
        used + free accounting matches capacity (subclasses may reserve
        rounding slack, so free-pool bytes must be >= capacity - used only
        for exact-accounting allocators; each subclass refines this).
        """
        prev_end = 0
        for alloc in self.live_allocations():
            assert alloc.offset >= prev_end, f"overlap at {alloc}"
            assert alloc.end <= self._capacity, f"out of bounds: {alloc}"
            prev_end = alloc.end
        assert 0 <= self._used_bytes <= self._capacity
