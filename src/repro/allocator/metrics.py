"""Fragmentation and utilisation reporting for the allocator ablation."""

from __future__ import annotations

from dataclasses import dataclass

from repro.allocator.base import Allocator


@dataclass(frozen=True)
class FragmentationReport:
    """Snapshot of how fragmented an allocator's space is."""

    allocator: str
    capacity: int
    used_bytes: int
    free_bytes: int
    largest_free: int
    num_free_blocks: int
    external_fragmentation: float
    internal_fragmentation: float

    def format_row(self) -> str:
        return (
            f"{self.allocator:<12} util={self.used_bytes / self.capacity:6.1%} "
            f"ext_frag={self.external_fragmentation:6.1%} "
            f"int_frag={self.internal_fragmentation:6.1%} "
            f"free_blocks={self.num_free_blocks}"
        )


def fragmentation_report(name: str, alloc: Allocator) -> FragmentationReport:
    """Compute the standard fragmentation metrics for *alloc*.

    * external fragmentation: ``1 - largest_free / free_bytes`` — how much of
      the free space is unusable for a single large request.
    * internal fragmentation: padding bytes (reserved - requested) as a
      fraction of reserved bytes across live allocations.
    """
    stats = alloc.stats()
    live = alloc.live_allocations()
    reserved = sum(a.padded_size for a in live)
    requested = sum(a.size for a in live)
    internal = (reserved - requested) / reserved if reserved else 0.0
    return FragmentationReport(
        allocator=name,
        capacity=stats.capacity,
        used_bytes=stats.used_bytes,
        free_bytes=stats.free_bytes,
        largest_free=stats.largest_free,
        num_free_blocks=stats.num_free_blocks,
        external_fragmentation=stats.external_fragmentation,
        internal_fragmentation=internal,
    )
