"""Memory allocators for the object store.

The paper replaces Plasma's dlmalloc with "a simple allocation algorithm
that receives the memory-mapped local disaggregated memory region and uses
it to allocate Plasma objects", using "an ordered map data structure with
logarithmic time look-up to keep track of the sizes of available regions"
(§IV-A1). That allocator is :class:`FirstFitAllocator`.

For the ablation the paper motivates in future work (§V-B: "improved
allocators generally have substantial impact"), a dlmalloc-style binned
best-fit allocator with coalescing (:class:`DlMallocAllocator`) and a buddy
allocator (:class:`BuddyAllocator`) are also provided.
"""

from repro.allocator.base import Allocation, Allocator, AllocatorStats
from repro.allocator.first_fit import FirstFitAllocator
from repro.allocator.dlmalloc import DlMallocAllocator
from repro.allocator.buddy import BuddyAllocator
from repro.allocator.factory import create_allocator, ALLOCATOR_NAMES
from repro.allocator.metrics import FragmentationReport, fragmentation_report

__all__ = [
    "Allocation",
    "Allocator",
    "AllocatorStats",
    "FirstFitAllocator",
    "DlMallocAllocator",
    "BuddyAllocator",
    "create_allocator",
    "ALLOCATOR_NAMES",
    "FragmentationReport",
    "fragmentation_report",
]
