"""Binary buddy allocator (extension for the allocator ablation).

Not in the paper; included because the future-work section calls out
allocator choice as having "substantial impact" [16], and a buddy system is
the textbook third point of comparison: O(log n) with bounded external
fragmentation but up-to-2x internal fragmentation from power-of-two
rounding.
"""

from __future__ import annotations

from repro.common.errors import OutOfMemoryError
from repro.allocator.base import Allocation, Allocator


def _next_pow2(n: int) -> int:
    return 1 << (n - 1).bit_length()


class BuddyAllocator(Allocator):
    """Classic binary buddy system over a power-of-two capacity.

    If the configured capacity is not a power of two, the largest
    power-of-two prefix is managed and the tail is unusable (reported via
    ``unmanaged_bytes``).
    """

    MIN_BLOCK = 64

    def __init__(self, capacity: int, alignment: int = 64):
        super().__init__(capacity, alignment)
        managed = 1 << (capacity.bit_length() - 1)
        if managed == capacity * 2:
            managed = capacity
        self._managed = managed
        self._max_order = (managed // self.MIN_BLOCK).bit_length() - 1
        # free_lists[k] holds offsets of free blocks of size MIN_BLOCK << k.
        self._free_lists: list[set[int]] = [set() for _ in range(self._max_order + 1)]
        self._free_lists[self._max_order].add(0)
        self._order_of: dict[int, int] = {}

    @property
    def unmanaged_bytes(self) -> int:
        return self._capacity - self._managed

    def _order_for(self, size: int) -> int:
        block = max(self.MIN_BLOCK, _next_pow2(size))
        return (block // self.MIN_BLOCK).bit_length() - 1

    def _do_allocate(self, padded_size: int) -> tuple[int, int]:
        if padded_size > self._managed:
            raise OutOfMemoryError(
                requested=padded_size,
                largest_free=self.largest_free,
                total_free=self.free_bytes,
            )
        order = self._order_for(padded_size)
        k = order
        while k <= self._max_order and not self._free_lists[k]:
            k += 1
        if k > self._max_order:
            raise OutOfMemoryError(
                requested=padded_size,
                largest_free=self.largest_free,
                total_free=self.free_bytes,
            )
        offset = min(self._free_lists[k])  # deterministic choice
        self._free_lists[k].discard(offset)
        # Split down to the requested order.
        while k > order:
            k -= 1
            buddy = offset + (self.MIN_BLOCK << k)
            self._free_lists[k].add(buddy)
        self._order_of[offset] = order
        return offset, self.MIN_BLOCK << order

    def _do_free(self, alloc: Allocation) -> None:
        offset = alloc.offset
        order = self._order_of.pop(offset)
        # Coalesce with the buddy as long as it is free.
        while order < self._max_order:
            block = self.MIN_BLOCK << order
            buddy = offset ^ block
            if buddy in self._free_lists[order]:
                self._free_lists[order].discard(buddy)
                offset = min(offset, buddy)
                order += 1
            else:
                break
        self._free_lists[order].add(offset)

    @property
    def largest_free(self) -> int:
        for k in range(self._max_order, -1, -1):
            if self._free_lists[k]:
                return self.MIN_BLOCK << k
        return 0

    @property
    def num_free_blocks(self) -> int:
        return sum(len(fl) for fl in self._free_lists)

    def audit(self) -> None:
        super().audit()
        free_total = sum(
            len(fl) * (self.MIN_BLOCK << k) for k, fl in enumerate(self._free_lists)
        )
        live_total = sum(a.padded_size for a in self.live_allocations())
        assert free_total + live_total == self._managed, (
            f"buddy accounting broken: free {free_total} + live {live_total} "
            f"!= managed {self._managed}"
        )
