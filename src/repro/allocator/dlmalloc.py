"""A dlmalloc-style allocator: the strategy Plasma originally uses.

Doug Lea's malloc is approximated by its two load-bearing ideas:

* **Binned free lists** — small requests are served from exact-size bins
  (64-byte granularity up to 4 KiB here), so frees and reallocations of the
  popular small sizes are O(1) and reuse is immediate.
* **Best-fit with boundary-tag coalescing for large requests** — large
  blocks live in a size-ordered tree (here the shared size-ordered map) and
  neighbours merge on free.

This is not a byte-accurate port (dlmalloc's designated-victim and trim
heuristics are omitted); it is the baseline whose locality/fragmentation
advantages the paper concedes its replacement allocator gives up, which is
exactly what the allocator ablation (DESIGN.md E5) measures.
"""

from __future__ import annotations

from repro.common.errors import OutOfMemoryError
from repro.allocator.base import Allocation, Allocator, FreeList, align_up


class DlMallocAllocator(Allocator):
    """Binned small-request path + best-fit large path with coalescing."""

    SMALL_BIN_GRANULARITY = 64
    SMALL_REQUEST_MAX = 4096

    def __init__(self, capacity: int, alignment: int = 64):
        super().__init__(capacity, alignment)
        # Small bins: exact padded size -> LIFO stack of offsets.
        self._small_bins: dict[int, list[int]] = {}
        self._small_bin_bytes = 0
        # Large pool: coalescing free list; starts owning everything.
        self._large = FreeList()
        self._large.insert(0, capacity)

    # -- helpers -----------------------------------------------------------------

    def _bin_size(self, padded_size: int) -> int:
        return align_up(padded_size, self.SMALL_BIN_GRANULARITY)

    def _is_small(self, padded_size: int) -> bool:
        return padded_size <= self.SMALL_REQUEST_MAX

    # -- core ---------------------------------------------------------------------

    def _do_allocate(self, padded_size: int) -> tuple[int, int]:
        if self._is_small(padded_size):
            binned = self._bin_size(padded_size)
            stack = self._small_bins.get(binned)
            if stack:
                offset = stack.pop()
                self._small_bin_bytes -= binned
                return offset, binned
            # Bin empty: carve a fresh block of the binned size from the
            # large pool (dlmalloc replenishes bins from the top chunk).
            return self._carve(binned)
        return self._carve(padded_size)

    def _carve(self, size: int) -> tuple[int, int]:
        found = self._large.take_fit(size)
        if found is None:
            # dlmalloc would consolidate bins back into the pool under
            # memory pressure; do the same, then retry once.
            if self._consolidate_bins():
                found = self._large.take_fit(size)
            if found is None:
                raise OutOfMemoryError(
                    requested=size,
                    largest_free=self._large.largest,
                    total_free=self.free_bytes,
                )
        offset, block_size = found
        remainder = block_size - size
        if remainder > 0:
            self._large.insert(offset + size, remainder)
        return offset, size

    def _consolidate_bins(self) -> bool:
        """Flush all small bins back into the coalescing pool."""
        flushed = False
        for binned, stack in self._small_bins.items():
            for offset in stack:
                self._large.insert_coalescing(offset, binned)
                flushed = True
            stack.clear()
        self._small_bin_bytes = 0
        return flushed

    def _do_free(self, alloc: Allocation) -> None:
        if self._is_small(alloc.padded_size) and alloc.padded_size == self._bin_size(
            alloc.padded_size
        ):
            self._small_bins.setdefault(alloc.padded_size, []).append(alloc.offset)
            self._small_bin_bytes += alloc.padded_size
        else:
            self._large.insert_coalescing(alloc.offset, alloc.padded_size)

    # -- introspection -------------------------------------------------------------

    @property
    def largest_free(self) -> int:
        return self._large.largest

    @property
    def num_free_blocks(self) -> int:
        return len(self._large) + sum(len(s) for s in self._small_bins.values())

    @property
    def binned_bytes(self) -> int:
        """Bytes parked in small bins (free but not coalescible yet)."""
        return self._small_bin_bytes

    def audit(self) -> None:
        super().audit()
        pieces = [(a.offset, a.padded_size) for a in self.live_allocations()]
        pieces += self._large.blocks()
        for binned, stack in self._small_bins.items():
            pieces += [(off, binned) for off in stack]
        pieces.sort()
        cursor = 0
        for offset, size in pieces:
            assert offset == cursor, f"gap or overlap at {cursor} vs {offset}"
            cursor += size
        assert cursor == self.capacity
        assert self._large.total_bytes + self._small_bin_bytes == self.free_bytes
