"""The paper's replacement allocator (§IV-A1).

Plasma originally coordinates dlmalloc arenas with file descriptors, which
cannot target the memory-mapped disaggregated region, so the paper replaces
it with "a simple allocation algorithm [that] allocates a chunk of memory to
the first available region that can accommodate it. By using an ordered map
data structure with logarithmic time look-up to keep track of the sizes of
available regions, performance should not suffer critically."

Interpretation note: the quoted description is realised here as a lookup in
a size-ordered map — the first entry (in size order) able to accommodate the
request, i.e. the smallest adequate free region, found in O(log n). The
paper explicitly concedes this allocator ignores "locality, alignment, and
fragmentation" relative to dlmalloc; the allocator ablation benchmark (E5 in
DESIGN.md) quantifies that trade.
"""

from __future__ import annotations

from repro.common.errors import OutOfMemoryError
from repro.allocator.base import Allocation, Allocator, FreeList


class FirstFitAllocator(Allocator):
    """Size-ordered-map allocator over one contiguous region.

    * allocate: O(log n) lookup in the size-ordered free map, split the
      found block, return the remainder to the map.
    * free: coalesce with adjacent free neighbours via the offset-ordered
      map, O(log n).
    """

    def __init__(self, capacity: int, alignment: int = 64):
        super().__init__(capacity, alignment)
        self._free = FreeList()
        self._free.insert(0, capacity)

    def _do_allocate(self, padded_size: int) -> tuple[int, int]:
        found = self._free.take_fit(padded_size)
        if found is None:
            raise OutOfMemoryError(
                requested=padded_size,
                largest_free=self._free.largest,
                total_free=self.free_bytes,
            )
        offset, block_size = found
        remainder = block_size - padded_size
        if remainder > 0:
            self._free.insert(offset + padded_size, remainder)
        return offset, padded_size

    def _do_free(self, alloc: Allocation) -> None:
        self._free.insert_coalescing(alloc.offset, alloc.padded_size)

    def _do_reserve(self, offset: int, padded_size: int) -> None:
        from repro.common.errors import AllocationError

        end = offset + padded_size
        for blk_off, blk_size in self._free.blocks():
            if blk_off <= offset and end <= blk_off + blk_size:
                # Split the containing free block around the reservation.
                self._free._remove(blk_off, blk_size)
                if blk_off < offset:
                    self._free.insert(blk_off, offset - blk_off)
                if end < blk_off + blk_size:
                    self._free.insert(end, blk_off + blk_size - end)
                return
            if blk_off > offset:
                break
        raise AllocationError(
            f"range [{offset}, {end}) is not entirely free; cannot reserve"
        )

    @property
    def largest_free(self) -> int:
        return self._free.largest

    @property
    def num_free_blocks(self) -> int:
        return len(self._free)

    def free_blocks(self) -> list[tuple[int, int]]:
        """(offset, size) of every free block, offset-ordered (for tests)."""
        return self._free.blocks()

    def audit(self) -> None:
        super().audit()
        # Free + live must exactly tile [0, capacity).
        pieces = [(a.offset, a.padded_size) for a in self.live_allocations()]
        pieces += self._free.blocks()
        pieces.sort()
        cursor = 0
        for offset, size in pieces:
            assert offset == cursor, (
                f"gap or overlap at {cursor}: next piece starts at {offset}"
            )
            cursor += size
        assert cursor == self.capacity, f"tiling ends at {cursor} != {self.capacity}"
        assert self._free.total_bytes == self.free_bytes
