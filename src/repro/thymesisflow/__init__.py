"""ThymesisFlow memory-disaggregation fabric (software model).

The paper's substrate is ThymesisFlow [Pinto et al., MICRO'20]: POWER9
servers whose FPGAs expose a *portion of local system memory* to remote
nodes over OpenCAPI, so that remote memory appears as a byte-addressable
region with load/store semantics. This package models that substrate:

* :class:`OpenCapiLink` — point-to-point link cost model (single-access
  latency, pipelined streaming bandwidth, jitter).
* :class:`ThymesisEndpoint` — one node's view: its real
  :class:`~repro.memory.host.HostMemory`, its cache (Fig 3 semantics), the
  exposed (disaggregated) window, and timed local access.
* :class:`ApertureMap` / :class:`RemoteRegion` — the address-translation
  role of the FPGA: remote windows mapped into the node's extended physical
  address space.
* :class:`ThymesisFabric` — topology: endpoints + links, mapping remote
  regions, routing reads/writes with the coherency semantics of Fig 3.
"""

from repro.thymesisflow.link import OpenCapiLink
from repro.thymesisflow.endpoint import ThymesisEndpoint
from repro.thymesisflow.aperture import ApertureMap, Aperture, RemoteRegion
from repro.thymesisflow.fabric import ThymesisFabric

__all__ = [
    "OpenCapiLink",
    "ThymesisEndpoint",
    "ApertureMap",
    "Aperture",
    "RemoteRegion",
    "ThymesisFabric",
]
