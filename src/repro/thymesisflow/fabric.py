"""Fabric topology: endpoints, links, and remote-region mapping.

The paper's prototype is a 2-node point-to-point system and its future-work
section asks for "rack-scale solutions ... modified to accommodate multiple
nodes"; the fabric supports arbitrary topologies (the cluster layer builds
a full mesh by default) so the multi-node extension benchmarks (DESIGN.md
E8) run on the same machinery.
"""

from __future__ import annotations

from repro.common.clock import SimClock
from repro.common.config import FabricLinkConfig, LocalMemoryConfig
from repro.common.errors import FabricError
from repro.common.rng import DeterministicRng
from repro.memory.host import HostMemory
from repro.thymesisflow.aperture import ApertureMap, RemoteRegion
from repro.thymesisflow.endpoint import ThymesisEndpoint
from repro.thymesisflow.link import OpenCapiLink


class ThymesisFabric:
    """All endpoints and links of one disaggregated installation."""

    def __init__(
        self,
        clock: SimClock,
        link_config: FabricLinkConfig,
        memory_config: LocalMemoryConfig,
        rng: DeterministicRng,
    ):
        self._clock = clock
        self._link_config = link_config
        self._memory_config = memory_config
        self._rng = rng.spawn("fabric")
        self._endpoints: dict[str, ThymesisEndpoint] = {}
        self._aperture_maps: dict[str, ApertureMap] = {}
        self._links: list[OpenCapiLink] = []

    @property
    def clock(self) -> SimClock:
        return self._clock

    # -- topology construction ---------------------------------------------------

    def add_node(self, name: str, memory_capacity: int) -> ThymesisEndpoint:
        """Create a node with *memory_capacity* bytes of real backing store."""
        if name in self._endpoints:
            raise FabricError(f"node {name!r} already exists")
        memory = HostMemory(memory_capacity, node=name)
        ep = ThymesisEndpoint(
            name, memory, self._clock, self._memory_config, self._rng
        )
        self._endpoints[name] = ep
        self._aperture_maps[name] = ApertureMap(ep)
        return ep

    def endpoint(self, name: str) -> ThymesisEndpoint:
        try:
            return self._endpoints[name]
        except KeyError:
            raise FabricError(f"unknown node {name!r}") from None

    def nodes(self) -> list[str]:
        return sorted(self._endpoints)

    def connect(self, node_a: str, node_b: str) -> OpenCapiLink:
        """Install a point-to-point OpenCAPI link between two nodes."""
        ep_a = self.endpoint(node_a)
        ep_b = self.endpoint(node_b)
        if self._find_link(node_a, node_b) is not None:
            raise FabricError(f"{node_a} and {node_b} are already linked")
        link = OpenCapiLink(
            ep_a.name, ep_b.name, self._clock, self._link_config, self._rng
        )
        self._links.append(link)
        return link

    def connect_full_mesh(self) -> None:
        """Link every node pair (the rack-scale topology)."""
        names = self.nodes()
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                if self._find_link(a, b) is None:
                    self.connect(a, b)

    def _find_link(self, node_a: str, node_b: str) -> OpenCapiLink | None:
        for link in self._links:
            if link.connects(node_a, node_b):
                return link
        return None

    def link_between(self, node_a: str, node_b: str) -> OpenCapiLink:
        link = self._find_link(node_a, node_b)
        if link is None:
            raise FabricError(f"no link between {node_a} and {node_b}")
        return link

    def links(self) -> list[OpenCapiLink]:
        return list(self._links)

    # -- mapping -------------------------------------------------------------------

    def map_remote(self, reader: str, home: str) -> RemoteRegion:
        """Give *reader* a timed window onto *home*'s exposed region.

        Requires a direct link (ThymesisFlow does not route through
        intermediate nodes).
        """
        reader_ep = self.endpoint(reader)
        home_ep = self.endpoint(home)
        link = self.link_between(reader, home)
        aperture = self._aperture_maps[reader].map_remote(home_ep, link)
        return RemoteRegion(aperture, reader_ep)

    def aperture_map(self, name: str) -> ApertureMap:
        try:
            return self._aperture_maps[name]
        except KeyError:
            raise FabricError(f"unknown node {name!r}") from None
