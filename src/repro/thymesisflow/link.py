"""Point-to-point OpenCAPI link cost model.

Two access regimes, matching how ThymesisFlow hardware behaves:

* **single access** (a load/store of up to one cache line): pays the full
  unloaded round trip through both FPGAs (~1.1 us) — this is the "inherent
  latency penalty ... non-negligible" the paper discusses in §III.
* **streaming** (bulk sequential reads, what the benchmarks measure): line
  fills pipeline, hiding the per-line latency; cost is a small per-transfer
  setup plus bytes / bandwidth. Calibrated so a single-threaded remote read
  sustains ~5.75 GiB/s (Fig 7).
"""

from __future__ import annotations

from repro.common.clock import SimClock
from repro.common.config import FabricLinkConfig
from repro.common.errors import LinkPartitionedError
from repro.common.rng import DeterministicRng
from repro.obs.metrics import CounterGroup
from repro.network.model import TransferModel


class OpenCapiLink:
    """A bidirectional link between two named endpoints."""

    def __init__(
        self,
        node_a: str,
        node_b: str,
        clock: SimClock,
        config: FabricLinkConfig,
        rng: DeterministicRng,
    ):
        if node_a == node_b:
            raise ValueError("a link must connect two distinct nodes")
        self._ends = frozenset((node_a, node_b))
        self._node_a = node_a
        self._node_b = node_b
        self._clock = clock
        self._config = config
        link_rng = rng.spawn("link", *sorted(self._ends))
        self._read_model = TransferModel(
            fixed_latency_ns=config.streaming_overhead_ns,
            bandwidth_bps=config.read_bandwidth_bps,
            jitter_sigma=config.jitter_sigma,
            rng=link_rng,
        )
        self._write_model = TransferModel(
            fixed_latency_ns=config.streaming_overhead_ns,
            bandwidth_bps=config.write_bandwidth_bps,
            jitter_sigma=config.jitter_sigma,
            rng=link_rng,
        )
        self._single_rng = link_rng
        self.counters = CounterGroup()
        # Fault-injection state (driven by repro.chaos.ChaosRuntime). A
        # healthy link has factors of 1.0 and pays nothing extra; the
        # happy-path cost model and its RNG draw sequence are untouched.
        self.chaos = None  # ChaosRuntime, set by attach_link()
        self._partitioned = False
        self._bandwidth_factor = 1.0
        self._latency_factor = 1.0
        # Opt-in observability, set by the cluster builder.
        self.tracer = None
        self.spans = None
        self.correlation = None
        self._m_read = None
        self._m_write = None

    @property
    def config(self) -> FabricLinkConfig:
        return self._config

    @property
    def link_name(self) -> str:
        return f"{self._node_a}<->{self._node_b}"

    def attach_metrics(self, registry) -> None:
        """Bind byte/op counters and per-transfer latency histograms."""
        if not getattr(registry, "enabled", True):
            return
        registry.register_group(
            self.counters, "thymesisflow_link", link=self.link_name
        )
        self._m_read = registry.histogram(
            "thymesisflow_read_latency_ns",
            "Simulated per-transfer fabric streaming-read latency.",
            labels=("link",),
        ).labels(link=self.link_name)
        self._m_write = registry.histogram(
            "thymesisflow_write_latency_ns",
            "Simulated per-transfer fabric streaming-write latency.",
            labels=("link",),
        ).labels(link=self.link_name)

    @property
    def endpoints(self) -> frozenset[str]:
        return self._ends

    def connects(self, node_a: str, node_b: str) -> bool:
        return frozenset((node_a, node_b)) == self._ends

    # -- fault injection -----------------------------------------------------------

    def set_partitioned(self, flag: bool) -> None:
        """Sever (or heal) the link: every access raises until healed —
        unlike a store crash, a cable cut makes the *fabric* unreachable."""
        self._partitioned = bool(flag)

    def set_degradation(
        self, bandwidth_factor: float = 1.0, latency_factor: float = 1.0
    ) -> None:
        """Degrade the link: effective bandwidth is scaled by
        *bandwidth_factor* (0.25 = a quarter of healthy throughput) and
        single-access latency by *latency_factor*."""
        if bandwidth_factor <= 0 or latency_factor <= 0:
            raise ValueError("degradation factors must be positive")
        self._bandwidth_factor = bandwidth_factor
        self._latency_factor = latency_factor

    @property
    def is_partitioned(self) -> bool:
        return self._partitioned

    @property
    def degradation(self) -> tuple[float, float]:
        return self._bandwidth_factor, self._latency_factor

    def _gate(self) -> None:
        if self.chaos is not None:
            self.chaos.poll()
        if self._partitioned:
            self.counters.inc("partition_rejections")
            raise LinkPartitionedError(
                f"fabric link {self._node_a}<->{self._node_b} is partitioned"
            )

    # -- timing ------------------------------------------------------------------

    def charge_stream_read(self, nbytes: int) -> float:
        """Bulk remote read of *nbytes*; returns charged ns."""
        if self.tracer is not None or self.spans is not None:
            cost = self._charge_observed(nbytes, "read", self._charge_stream_read)
        else:
            cost = self._charge_stream_read(nbytes)
        if self._m_read is not None:
            self._m_read.observe(cost)
        return cost

    def _charge_observed(self, nbytes: int, op: str, inner) -> float:
        """Wrap a transfer in fabric spans (legacy tracer and/or span sink)."""
        args = {"bytes": nbytes}
        rid = self.correlation.current if self.correlation else None
        if rid is not None:
            args["rid"] = rid
        if self.spans is not None:
            with self.spans.span("fabric", op, node=self.link_name, **args):
                return self._charge_legacy_traced(nbytes, op, inner, args)
        return self._charge_legacy_traced(nbytes, op, inner, args)

    def _charge_legacy_traced(self, nbytes: int, op: str, inner, args: dict) -> float:
        if self.tracer is not None:
            with self.tracer.span("fabric", op, track=self.link_name, **args):
                return inner(nbytes)
        return inner(nbytes)

    def _charge_stream_read(self, nbytes: int) -> float:
        self._gate()
        cost = 0.0
        remaining = nbytes
        burst = self._config.max_burst_bytes
        while remaining > 0:
            chunk = min(remaining, burst)
            cost += self._read_model.cost_ns(chunk)
            remaining -= chunk
        cost /= self._bandwidth_factor
        self._clock.advance(cost)
        self.counters.inc("read_bytes", nbytes)
        self.counters.inc("read_ops")
        return cost

    def charge_stream_write(self, nbytes: int) -> float:
        if self.tracer is not None or self.spans is not None:
            cost = self._charge_observed(nbytes, "write", self._charge_stream_write)
        else:
            cost = self._charge_stream_write(nbytes)
        if self._m_write is not None:
            self._m_write.observe(cost)
        return cost

    def _charge_stream_write(self, nbytes: int) -> float:
        self._gate()
        cost = 0.0
        remaining = nbytes
        burst = self._config.max_burst_bytes
        while remaining > 0:
            chunk = min(remaining, burst)
            cost += self._write_model.cost_ns(chunk)
            remaining -= chunk
        cost /= self._bandwidth_factor
        self._clock.advance(cost)
        self.counters.inc("write_bytes", nbytes)
        self.counters.inc("write_ops")
        return cost

    def note_read_avoided(self, nbytes: int) -> None:
        """A hot-object cache hit served bytes this link would otherwise
        have streamed. Pure accounting — no clock advance, no RNG draw —
        so enabling the cache never perturbs fabric timing for the reads
        that *do* happen."""
        self.counters.inc("read_bytes_avoided", nbytes)
        self.counters.inc("reads_avoided")

    def charge_single_access(self) -> float:
        """One unpipelined load/store (≤ a cache line) round trip."""
        self._gate()
        cost = (
            self._config.added_latency_ns
            * self._latency_factor
            * self._single_rng.lognormal_jitter(self._config.jitter_sigma)
        )
        self._clock.advance(cost)
        self.counters.inc("single_accesses")
        return cost

    def __repr__(self) -> str:
        return f"OpenCapiLink({self._node_a}<->{self._node_b})"
