"""Point-to-point OpenCAPI link cost model.

Two access regimes, matching how ThymesisFlow hardware behaves:

* **single access** (a load/store of up to one cache line): pays the full
  unloaded round trip through both FPGAs (~1.1 us) — this is the "inherent
  latency penalty ... non-negligible" the paper discusses in §III.
* **streaming** (bulk sequential reads, what the benchmarks measure): line
  fills pipeline, hiding the per-line latency; cost is a small per-transfer
  setup plus bytes / bandwidth. Calibrated so a single-threaded remote read
  sustains ~5.75 GiB/s (Fig 7).
"""

from __future__ import annotations

from repro.common.clock import SimClock
from repro.common.config import FabricLinkConfig
from repro.common.rng import DeterministicRng
from repro.common.stats import Counter
from repro.network.model import TransferModel


class OpenCapiLink:
    """A bidirectional link between two named endpoints."""

    def __init__(
        self,
        node_a: str,
        node_b: str,
        clock: SimClock,
        config: FabricLinkConfig,
        rng: DeterministicRng,
    ):
        if node_a == node_b:
            raise ValueError("a link must connect two distinct nodes")
        self._ends = frozenset((node_a, node_b))
        self._node_a = node_a
        self._node_b = node_b
        self._clock = clock
        self._config = config
        link_rng = rng.spawn("link", *sorted(self._ends))
        self._read_model = TransferModel(
            fixed_latency_ns=config.streaming_overhead_ns,
            bandwidth_bps=config.read_bandwidth_bps,
            jitter_sigma=config.jitter_sigma,
            rng=link_rng,
        )
        self._write_model = TransferModel(
            fixed_latency_ns=config.streaming_overhead_ns,
            bandwidth_bps=config.write_bandwidth_bps,
            jitter_sigma=config.jitter_sigma,
            rng=link_rng,
        )
        self._single_rng = link_rng
        self.counters = Counter()

    @property
    def config(self) -> FabricLinkConfig:
        return self._config

    @property
    def endpoints(self) -> frozenset[str]:
        return self._ends

    def connects(self, node_a: str, node_b: str) -> bool:
        return frozenset((node_a, node_b)) == self._ends

    # -- timing ------------------------------------------------------------------

    def charge_stream_read(self, nbytes: int) -> float:
        """Bulk remote read of *nbytes*; returns charged ns."""
        cost = 0.0
        remaining = nbytes
        burst = self._config.max_burst_bytes
        while remaining > 0:
            chunk = min(remaining, burst)
            cost += self._read_model.cost_ns(chunk)
            remaining -= chunk
        self._clock.advance(cost)
        self.counters.inc("read_bytes", nbytes)
        self.counters.inc("read_ops")
        return cost

    def charge_stream_write(self, nbytes: int) -> float:
        cost = 0.0
        remaining = nbytes
        burst = self._config.max_burst_bytes
        while remaining > 0:
            chunk = min(remaining, burst)
            cost += self._write_model.cost_ns(chunk)
            remaining -= chunk
        self._clock.advance(cost)
        self.counters.inc("write_bytes", nbytes)
        self.counters.inc("write_ops")
        return cost

    def charge_single_access(self) -> float:
        """One unpipelined load/store (≤ a cache line) round trip."""
        cost = self._config.added_latency_ns * self._single_rng.lognormal_jitter(
            self._config.jitter_sigma
        )
        self._clock.advance(cost)
        self.counters.inc("single_accesses")
        return cost

    def __repr__(self) -> str:
        return f"OpenCapiLink({self._node_a}<->{self._node_b})"
