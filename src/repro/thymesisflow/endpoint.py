"""One node's attachment to the ThymesisFlow fabric.

An endpoint owns the node's physical memory and cache, carves out the
*exposed* (disaggregated) window that remote nodes may map (paper §III: "a
portion of local system memory is marked as disaggregated and made
available to remote compute nodes"), and provides *timed* local access for
the node's own CPU.

Timing model for local access: a streaming read of ``n`` bytes costs
``access_latency + n / read_bandwidth``, sped up by the fraction of the
range that is cache-resident, with multiplicative jitter. Writes are
analogous (write-through, no cache speedup).
"""

from __future__ import annotations

from repro.common.clock import NS_PER_S, SimClock
from repro.common.config import LocalMemoryConfig
from repro.common.errors import FabricError
from repro.common.rng import DeterministicRng
from repro.obs.metrics import CounterGroup
from repro.memory.cache import CacheModel
from repro.memory.host import HostMemory, MemoryRegion


class ThymesisEndpoint:
    """A node (name + memory + cache) attached to the fabric."""

    def __init__(
        self,
        name: str,
        memory: HostMemory,
        clock: SimClock,
        config: LocalMemoryConfig,
        rng: DeterministicRng,
    ):
        self._name = name
        self._memory = memory
        self._cache = CacheModel(memory, config)
        self._clock = clock
        self._config = config
        self._rng = rng.spawn("endpoint", name)
        self._exposed: MemoryRegion | None = None
        self._read_ns_per_byte = NS_PER_S / config.read_bandwidth_bps
        self._write_ns_per_byte = NS_PER_S / config.write_bandwidth_bps
        self.counters = CounterGroup()

    # -- identity / structure ---------------------------------------------------

    @property
    def name(self) -> str:
        return self._name

    @property
    def memory(self) -> HostMemory:
        return self._memory

    @property
    def cache(self) -> CacheModel:
        return self._cache

    @property
    def clock(self) -> SimClock:
        return self._clock

    @property
    def config(self) -> LocalMemoryConfig:
        return self._config

    def expose(self, base: int, size: int) -> MemoryRegion:
        """Mark ``[base, base+size)`` of local memory as disaggregated.

        Only one exposed window per endpoint (matches the prototype's single
        ThymesisFlow region per node).
        """
        if self._exposed is not None:
            raise FabricError(f"endpoint {self._name} already exposes a region")
        self._exposed = self._memory.region(base, size)
        return self._exposed

    @property
    def exposed(self) -> MemoryRegion:
        if self._exposed is None:
            raise FabricError(f"endpoint {self._name} exposes no region")
        return self._exposed

    @property
    def has_exposed(self) -> bool:
        return self._exposed is not None

    # -- timed local access -------------------------------------------------------

    def _local_read_cost(self, size: int, hit_fraction: float) -> float:
        speedup = 1.0 + (self._config.cached_read_speedup - 1.0) * hit_fraction
        base = self._config.access_latency_ns + size * self._read_ns_per_byte / speedup
        return base * self._rng.lognormal_jitter(self._config.jitter_sigma)

    def local_read(self, offset: int, size: int, out=None) -> float:
        """The node's CPU reads ``[offset, offset+size)``; returns charged ns.

        If *out* is given the observed bytes (stale-aware, Fig 3b) are
        copied into it; otherwise only timing/cache state is updated.
        """
        access = self._cache.local_read(offset, size, out=out)
        cost = self._local_read_cost(size, access.hit_fraction)
        self._clock.advance(cost)
        self.counters.inc("local_read_bytes", size)
        self.counters.inc("local_reads")
        if access.stale_bytes:
            self.counters.inc("stale_bytes_observed", access.stale_bytes)
        return cost

    def local_write(self, offset: int, data) -> float:
        """The node's CPU writes *data* at *offset*; returns charged ns."""
        mv = memoryview(data)
        if mv.ndim != 1 or mv.itemsize != 1:
            mv = mv.cast("B")
        self._cache.local_write(offset, mv)
        base = self._config.access_latency_ns + len(mv) * self._write_ns_per_byte
        cost = base * self._rng.lognormal_jitter(self._config.jitter_sigma)
        self._clock.advance(cost)
        self.counters.inc("local_write_bytes", len(mv))
        self.counters.inc("local_writes")
        return cost

    def charge_local_write(self, offset: int, size: int) -> float:
        """Account a write's time and cache effects without copying bytes
        (benchmark charge-only mode; content-carrying paths use
        :meth:`local_write`)."""
        self._cache.note_local_write(offset, size)
        base = self._config.access_latency_ns + size * self._write_ns_per_byte
        cost = base * self._rng.lognormal_jitter(self._config.jitter_sigma)
        self._clock.advance(cost)
        self.counters.inc("local_write_bytes", size)
        self.counters.inc("local_writes")
        return cost

    def local_view(self, offset: int, size: int) -> memoryview:
        """Untimed zero-copy window (for wiring, not for measured paths)."""
        return self._memory.view(offset, size)

    # -- fabric-side service (called by remote apertures) ---------------------------

    def serve_remote_read(self, offset: int, size: int) -> memoryview:
        """A remote node reads our exposed region: coherent (Fig 3a)."""
        region = self.exposed
        abs_off = region.absolute(offset)
        self.counters.inc("served_remote_read_bytes", size)
        return self._cache.remote_coherent_read(abs_off, size)

    def serve_remote_write(self, offset: int, data) -> int:
        """A remote node writes our exposed region: lands in DRAM but our
        cache is NOT invalidated (Fig 3b). Returns stale byte count."""
        region = self.exposed
        mv = memoryview(data)
        if mv.ndim != 1 or mv.itemsize != 1:
            mv = mv.cast("B")
        abs_off = region.absolute(offset)
        # Bounds: the write must stay inside the exposed window.
        region._translate(offset, len(mv))  # noqa: SLF001 — shared bounds check
        stale = self._cache.remote_write_received(abs_off, mv)
        self.counters.inc("served_remote_write_bytes", len(mv))
        if stale:
            self.counters.inc("stale_bytes_created", stale)
        return stale

    def invalidate_exposed(self, offset: int, size: int) -> None:
        """What the paper's hypothetical kernel module would do: drop cached
        lines over part of the exposed region so remote writes become
        visible locally."""
        region = self.exposed
        abs_off = region.absolute(offset)
        region._translate(offset, size)  # noqa: SLF001 — bounds check
        self._cache.invalidate(abs_off, size)

    def __repr__(self) -> str:
        return f"ThymesisEndpoint({self._name}, {self._memory.capacity} B)"
