"""Aperture mapping: the FPGA's address-translation role.

On real ThymesisFlow hardware, remote disaggregated memory appears in a
node's *extended physical address space*; loads/stores that hit an aperture
window are relayed to the home node's FPGA. :class:`ApertureMap` reproduces
that translation: each mapped remote region gets a window above the node's
local capacity, and :meth:`translate` resolves any extended address to
either local memory or a (link, home endpoint, home offset) triple.

:class:`RemoteRegion` is the ergonomic handle the object store uses: a
region-shaped view of one remote exposed window with timed read/write.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ApertureError
from repro.obs.metrics import CounterGroup
from repro.thymesisflow.endpoint import ThymesisEndpoint
from repro.thymesisflow.link import OpenCapiLink

# Windows are aligned to 256 MiB "sockets", mirroring how ThymesisFlow
# carves its extended address space.
_WINDOW_ALIGN = 256 * 1024 * 1024


@dataclass(frozen=True)
class Aperture:
    """One mapped window: extended addresses [base, base+size) on the local
    node correspond to offsets [0, size) of *home*'s exposed region."""

    base: int
    size: int
    home: ThymesisEndpoint
    link: OpenCapiLink

    @property
    def end(self) -> int:
        return self.base + self.size


class ApertureMap:
    """The per-node table of mapped remote windows."""

    def __init__(self, owner: ThymesisEndpoint):
        self._owner = owner
        self._apertures: list[Aperture] = []
        self._next_base = self._align_up(owner.memory.capacity)

    @staticmethod
    def _align_up(addr: int) -> int:
        return -(-addr // _WINDOW_ALIGN) * _WINDOW_ALIGN

    @property
    def owner(self) -> ThymesisEndpoint:
        return self._owner

    def apertures(self) -> list[Aperture]:
        return list(self._apertures)

    def map_remote(self, home: ThymesisEndpoint, link: OpenCapiLink) -> Aperture:
        """Map *home*'s exposed region into the extended address space."""
        if home.name == self._owner.name:
            raise ApertureError("a node does not map its own memory as remote")
        if not link.connects(self._owner.name, home.name):
            raise ApertureError(
                f"link {link!r} does not connect {self._owner.name} and {home.name}"
            )
        for ap in self._apertures:
            if ap.home.name == home.name:
                raise ApertureError(
                    f"{self._owner.name} already maps {home.name}'s region"
                )
        region = home.exposed  # raises if home exposes nothing
        aperture = Aperture(
            base=self._next_base, size=region.size, home=home, link=link
        )
        self._apertures.append(aperture)
        self._next_base = self._align_up(aperture.end + 1)
        return aperture

    def translate(self, address: int, size: int) -> tuple[Aperture | None, int]:
        """Resolve an extended physical address range.

        Returns ``(None, address)`` for local memory, or
        ``(aperture, home_offset)`` for a mapped remote window. The range
        must lie entirely within one window.
        """
        if size <= 0:
            raise ApertureError("translation range must be non-empty")
        if 0 <= address and address + size <= self._owner.memory.capacity:
            return None, address
        for ap in self._apertures:
            if ap.base <= address and address + size <= ap.end:
                return ap, address - ap.base
        raise ApertureError(
            f"address range [{address}, {address + size}) of node "
            f"{self._owner.name} hits no local memory or mapped aperture"
        )


class RemoteRegion:
    """Timed access to one remote exposed window through an aperture.

    Offsets are relative to the home node's exposed region, exactly how the
    disaggregated Plasma store addresses remote objects (home-region offset
    + size travel in RPC lookups).
    """

    def __init__(self, aperture: Aperture, reader: ThymesisEndpoint):
        self._ap = aperture
        self._reader = reader
        self.counters = CounterGroup()

    @property
    def home_name(self) -> str:
        return self._ap.home.name

    @property
    def size(self) -> int:
        return self._ap.size

    @property
    def aperture(self) -> Aperture:
        return self._ap

    def _check(self, offset: int, size: int) -> None:
        if size <= 0:
            raise ApertureError("access size must be positive")
        if offset < 0 or offset + size > self._ap.size:
            raise ApertureError(
                f"remote access [{offset}, {offset + size}) exceeds the "
                f"{self._ap.size}-byte window onto {self.home_name}"
            )

    def read(self, offset: int, size: int, out=None) -> bytes | None:
        """Streaming coherent read (Fig 3a). Charges the link; returns the
        bytes (or fills *out* and returns None)."""
        self._check(offset, size)
        src = self._ap.home.serve_remote_read(offset, size)
        self._ap.link.charge_stream_read(size)
        self.counters.inc("read_bytes", size)
        if out is not None:
            mv = memoryview(out)
            if mv.ndim != 1 or mv.itemsize != 1:
                mv = mv.cast("B")
            if len(mv) < size:
                raise ApertureError("output buffer too small for remote read")
            mv[:size] = src
            return None
        return bytes(src)

    def view(self, offset: int, size: int) -> memoryview:
        """Untimed read-only view of remote memory — the zero-copy handle
        the store wires into buffers; consumers charge timing when they
        actually stream it (see PlasmaBuffer.read_all)."""
        self._check(offset, size)
        return self._ap.home.serve_remote_read(offset, size)

    def charge_read(self, size: int) -> float:
        """Charge link time for streaming *size* bytes (used with view())."""
        return self._ap.link.charge_stream_read(size)

    def write(self, offset: int, data) -> int:
        """Streaming write into remote memory (Fig 3b!): the bytes land in
        the home node's DRAM, but its cache is NOT invalidated — the home
        CPU may keep observing stale data. Returns stale byte count."""
        mv = memoryview(data)
        if mv.ndim != 1 or mv.itemsize != 1:
            mv = mv.cast("B")
        self._check(offset, len(mv))
        self._ap.link.charge_stream_write(len(mv))
        stale = self._ap.home.serve_remote_write(offset, mv)
        self.counters.inc("write_bytes", len(mv))
        return stale

    def load(self, offset: int, size: int = 8) -> bytes:
        """A single unpipelined load (≤ one cache line): pays the full
        FPGA round-trip latency."""
        if size > self._ap.link.config.max_burst_bytes:
            raise ApertureError("single loads are at most one burst")
        self._check(offset, size)
        src = self._ap.home.serve_remote_read(offset, size)
        self._ap.link.charge_single_access()
        return bytes(src)

    def store(self, offset: int, data) -> int:
        """A single unpipelined store; same coherency caveat as write()."""
        mv = memoryview(data)
        if mv.ndim != 1 or mv.itemsize != 1:
            mv = mv.cast("B")
        self._check(offset, len(mv))
        self._ap.link.charge_single_access()
        return self._ap.home.serve_remote_write(offset, mv)
