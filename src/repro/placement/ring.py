"""Consistent-hash placement ring with weighted virtual nodes.

Every ACTIVE member contributes ``round(vnodes * effective_weight)``
virtual points on a 64-bit hash circle; an object's home is the owner of
the first point clockwise of ``hash(object_id)``. Virtual-node positions
are pure functions of ``(member name, index)`` — no RNG is consumed and no
clock is read, so ring construction never perturbs the simulation and two
nodes that install the same topology view compute byte-identical rings.

Capacity awareness (ISSUE: "capacity-aware via allocator utilization
gauges"): a member whose allocator utilization crosses the high watermark
has its weight derated toward ``min_capacity_factor``, shrinking its arc so
new objects prefer emptier stores. The derate is a step-free ramp above the
watermark only — below it utilization does *not* move the ring, otherwise
every migration would shift arcs and the rebalancer could chase its own
tail instead of converging.
"""

from __future__ import annotations

import bisect
import hashlib

from repro.common.errors import PlacementError
from repro.common.ids import ObjectID

_HASH_SPACE = 1 << 64


def _hash64(data: bytes) -> int:
    """Position on the 64-bit circle; stable across processes and runs."""
    return int.from_bytes(
        hashlib.blake2b(data, digest_size=8).digest(), "big"
    )


def capacity_derate(
    utilization: float,
    *,
    high_watermark: float = 0.85,
    min_factor: float = 0.05,
) -> float:
    """Weight multiplier for a member at *utilization* (0..1).

    1.0 below the watermark; linear ramp down to *min_factor* at 100 %
    utilization. Clamped so a pathological gauge (>1.0) cannot produce a
    negative weight.
    """
    if utilization <= high_watermark:
        return 1.0
    if high_watermark >= 1.0:
        return 1.0
    frac = min(1.0, (utilization - high_watermark) / (1.0 - high_watermark))
    return max(min_factor, 1.0 - frac * (1.0 - min_factor))


class HashRing:
    """Immutable weighted consistent-hash ring over a set of member names."""

    def __init__(
        self,
        weights: dict[str, float],
        *,
        vnodes: int = 64,
        utilization: dict[str, float] | None = None,
        high_watermark: float = 0.85,
        min_capacity_factor: float = 0.05,
    ):
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        utilization = utilization or {}
        self._weights = dict(weights)
        self._effective: dict[str, float] = {}
        points: list[tuple[int, str]] = []
        for name in sorted(weights):
            weight = float(weights[name])
            if weight <= 0:
                raise ValueError(f"member {name!r} has non-positive weight")
            eff = weight * capacity_derate(
                float(utilization.get(name, 0.0)),
                high_watermark=high_watermark,
                min_factor=min_capacity_factor,
            )
            self._effective[name] = eff
            n_points = max(1, round(vnodes * eff))
            for i in range(n_points):
                points.append((_hash64(f"{name}#{i}".encode()), name))
        # Ties (two members hashing one vnode to the same point) resolve by
        # name so the ring is total-ordered and deterministic.
        self._points = sorted(points)
        self._keys = [p[0] for p in self._points]

    @classmethod
    def from_view(cls, view, *, utilization=None, **kwargs) -> "HashRing":
        """Ring over a TopologyView's *placeable* (ACTIVE) members, using
        the per-member weight and utilization the view carries."""
        weights = {}
        util = dict(utilization or {})
        for name in view.placeable_names():
            member = view.members[name]
            weights[name] = member.weight
            util.setdefault(name, member.utilization)
        return cls(weights, utilization=util, **kwargs)

    # -- placement ----------------------------------------------------------

    def home(self, object_id: ObjectID) -> str:
        """The member owning *object_id*'s position on the circle."""
        if not self._points:
            raise PlacementError("placement ring has no active members")
        h = _hash64(object_id.binary())
        idx = bisect.bisect_right(self._keys, h)
        if idx == len(self._points):
            idx = 0
        return self._points[idx][1]

    def preference(self, object_id: ObjectID, n: int) -> list[str]:
        """The first *n* distinct members clockwise of the object's
        position — home first, then failover candidates."""
        if not self._points:
            raise PlacementError("placement ring has no active members")
        h = _hash64(object_id.binary())
        idx = bisect.bisect_right(self._keys, h)
        out: list[str] = []
        for step in range(len(self._points)):
            name = self._points[(idx + step) % len(self._points)][1]
            if name not in out:
                out.append(name)
                if len(out) >= n:
                    break
        return out

    # -- introspection ------------------------------------------------------

    def members(self) -> list[str]:
        return sorted(self._weights)

    def vnode_count(self, name: str) -> int:
        return sum(1 for _, owner in self._points if owner == name)

    def effective_weight(self, name: str) -> float:
        return self._effective[name]

    def ownership_share(self) -> dict[str, float]:
        """Fraction of the hash circle each member owns (sums to 1.0)."""
        shares = {name: 0 for name in self._weights}
        if not self._points:
            return {name: 0.0 for name in shares}
        prev = self._keys[-1]
        for key, owner in self._points:
            arc = (key - prev) % _HASH_SPACE
            if arc == 0 and len(self._points) > 1:
                prev = key
                continue
            if len(self._points) == 1:
                arc = _HASH_SPACE
            shares[owner] += arc
            prev = key
        return {name: arc / _HASH_SPACE for name, arc in shares.items()}

    def imbalance(self) -> float:
        """Max ownership share over the ideal equal share (1.0 = perfectly
        balanced; 2.0 = the hottest member owns twice its fair arc).
        Weighted members are compared against their weight-proportional
        fair share."""
        if not self._points:
            return 0.0
        shares = self.ownership_share()
        total_eff = sum(self._effective.values())
        worst = 0.0
        for name, share in shares.items():
            fair = self._effective[name] / total_eff
            if fair > 0:
                worst = max(worst, share / fair)
        return worst

    def __len__(self) -> int:
        return len(self._points)

    def __repr__(self) -> str:
        return (
            f"HashRing(members={self.members()}, points={len(self._points)})"
        )
