"""Sim-clock-driven rebalancer: converge placement after join/drain/crash.

Each :meth:`Rebalancer.tick` retries deferred source retirements, computes
the misplaced set (sealed primaries whose ring home is a different ACTIVE
member), migrates objects in deterministic order until the configured
bytes-per-tick budget is spent, and advances the simulated clock by the
tick interval — the discrete-event stand-in for a background rebalance
thread with a bandwidth cap.

Sources must be ACTIVE or DRAINING: a DOWN member's store process cannot
drive the pull protocol (its data either waits for ``recover_node`` or is
served from replicas). Destinations must be ACTIVE; a migration aborted by
chaos (destination crashed mid-protocol) simply stays in the misplaced set
and is retried on a later tick, so convergence is eventual and every
intermediate state keeps the object readable at its old home.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.ids import ObjectID
from repro.placement.membership import NodeStatus


@dataclass(frozen=True)
class TickReport:
    """What one rebalancer tick did."""

    moved_objects: int
    moved_bytes: int
    aborted: int
    retired: int
    misplaced_bytes_after: int


@dataclass(frozen=True)
class ConvergenceReport:
    ticks: int
    moved_objects: int
    moved_bytes: int
    converged: bool
    final_misplaced_bytes: int
    tick_reports: tuple[TickReport, ...] = field(default=())

    def describe(self) -> str:
        state = "converged" if self.converged else "NOT converged"
        return (
            f"{state} after {self.ticks} tick(s): {self.moved_objects} "
            f"object(s) / {self.moved_bytes} B moved, "
            f"{self.final_misplaced_bytes} B still misplaced"
        )


class Rebalancer:
    """Moves misplaced primaries to their ring homes, budgeted per tick."""

    def __init__(
        self,
        cluster,
        engine,
        *,
        bytes_per_tick: int,
        tick_interval_ns: float,
    ):
        if bytes_per_tick <= 0:
            raise ValueError("bytes_per_tick must be positive")
        if tick_interval_ns < 0:
            raise ValueError("tick_interval_ns must be non-negative")
        self._cluster = cluster
        self._engine = engine
        self._bytes_per_tick = int(bytes_per_tick)
        self._tick_interval_ns = float(tick_interval_ns)

    @property
    def bytes_per_tick(self) -> int:
        return self._bytes_per_tick

    def _source_names(self) -> list[str]:
        view = self._cluster.membership.view()
        return [
            name
            for name in view.names()
            if view.status(name) in (NodeStatus.ACTIVE, NodeStatus.DRAINING)
            and name in self._cluster.node_names()
        ]

    def misplaced(self) -> list[tuple[str, ObjectID, int]]:
        """``(holder, object_id, data_size)`` for every sealed primary whose
        ring home is a *different* ACTIVE member. Replicas, unsealed and
        quarantined objects are placement-neutral and skipped — and so are
        objects the tier engine deliberately placed off their ring home
        (promotions/demotions), else the two engines would ping-pong them.
        Sorted (holder, id) so every run walks the same plan."""
        ring = self._cluster.placement_ring()
        view = self._cluster.membership.view()
        tier = getattr(self._cluster, "tier_engine", None)
        plan: list[tuple[str, ObjectID, int]] = []
        for name in self._source_names():
            store = self._cluster.store(name)
            with store.table.lock:
                entries = [
                    (entry.object_id, entry.data_size)
                    for entry in store.table
                    if entry.is_sealed and not entry.quarantined
                ]
            for oid, size in sorted(entries):
                if store.is_replica(oid):
                    continue
                if tier is not None and tier.is_tier_placed(oid):
                    continue
                home = ring.home(oid)
                if home == name:
                    continue
                if view.status(home) is not NodeStatus.ACTIVE:
                    continue
                plan.append((name, oid, size))
        return plan

    def misplaced_bytes(self) -> int:
        return sum(size for _, _, size in self.misplaced())

    def tick(self) -> TickReport:
        """One budgeted rebalance round; advances the sim clock once."""
        retired = 0
        for name in self._source_names():
            retired += self._cluster.store(name).flush_deferred_retires()
        moved_objects = 0
        moved_bytes = 0
        aborted = 0
        for holder, oid, size in self.misplaced():
            if moved_bytes >= self._bytes_per_tick:
                break
            dest = self._cluster.placement_ring().home(oid)
            result = self._engine.migrate(
                self._cluster.store(holder), dest, oid
            )
            if result.moved:
                moved_objects += 1
                moved_bytes += result.bytes_moved
            else:
                aborted += 1
        if self._tick_interval_ns:
            self._cluster.clock.advance(self._tick_interval_ns)
        return TickReport(
            moved_objects=moved_objects,
            moved_bytes=moved_bytes,
            aborted=aborted,
            retired=retired,
            misplaced_bytes_after=self.misplaced_bytes(),
        )

    def deferred_retires(self) -> int:
        return sum(
            len(self._cluster.store(name).deferred_retires())
            for name in self._source_names()
        )

    def run_until_converged(
        self, *, max_ticks: int = 10_000, keep_reports: bool = False
    ) -> ConvergenceReport:
        """Tick until nothing is misplaced and no retirement is pending
        (or *max_ticks* elapse — e.g. every destination is down)."""
        moved_objects = 0
        moved_bytes = 0
        reports: list[TickReport] = []
        ticks = 0
        stalled = 0
        while ticks < max_ticks:
            if self.misplaced_bytes() == 0 and self.deferred_retires() == 0:
                break
            report = self.tick()
            ticks += 1
            moved_objects += report.moved_objects
            moved_bytes += report.moved_bytes
            if keep_reports:
                reports.append(report)
            if report.moved_objects == 0 and report.retired == 0:
                # No progress (destinations unreachable, sources pinned).
                stalled += 1
                if stalled >= 3:
                    break
            else:
                stalled = 0
        final = self.misplaced_bytes()
        return ConvergenceReport(
            ticks=ticks,
            moved_objects=moved_objects,
            moved_bytes=moved_bytes,
            converged=final == 0 and self.deferred_retires() == 0,
            final_misplaced_bytes=final,
            tick_reports=tuple(reports),
        )
