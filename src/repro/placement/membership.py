"""Membership & topology: epoch-numbered views of who is in the cluster.

The membership service is the control plane the paper's fixed two-node
deployment never needed: nodes join, drain and leave, and every change
produces a new :class:`TopologyView` with a strictly increasing epoch.
Views propagate over the existing RPC layer (``UpdateTopology`` pushes from
the coordinator; ``Topology`` pulls on restart) and are reconciled with
``repro.core.health`` liveness — a suspected peer is marked DOWN, which
removes it from the placement ring without touching its exposed memory.

Epoch discipline: a store only installs a view with a *higher* epoch than
the one it holds, so re-ordered or replayed pushes are harmless, and every
lookup-cache entry is stamped with the epoch it was learned under (stale
entries are re-looked-up rather than trusted across a topology change).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from repro.common.errors import PlacementError


class NodeStatus(enum.Enum):
    """Lifecycle of a member.

    ACTIVE   — owns ring arcs; creates route to it.
    DRAINING — serves reads, owns no arcs; the rebalancer empties it.
    DOWN     — failure detector lost it; owns no arcs, metadata plane
               unreachable (its exposed bytes may still be).
    """

    ACTIVE = "active"
    DRAINING = "draining"
    DOWN = "down"

    def __str__(self) -> str:  # pragma: no cover - repr sugar
        return self.value


@dataclass(frozen=True)
class MemberInfo:
    status: NodeStatus
    weight: float = 1.0
    # Allocator utilization (0..1) sampled at publish time; feeds the
    # ring's capacity derate.
    utilization: float = 0.0


@dataclass(frozen=True)
class TopologyView:
    """One immutable, epoch-stamped snapshot of cluster membership."""

    epoch: int
    members: dict[str, MemberInfo] = field(default_factory=dict)

    def names(self) -> list[str]:
        return sorted(self.members)

    def placeable_names(self) -> list[str]:
        """Members that may own ring arcs (ACTIVE only)."""
        return sorted(
            name
            for name, m in self.members.items()
            if m.status is NodeStatus.ACTIVE
        )

    def readable_names(self) -> list[str]:
        """Members whose stores can answer reads (not DOWN)."""
        return sorted(
            name
            for name, m in self.members.items()
            if m.status is not NodeStatus.DOWN
        )

    def status(self, name: str) -> NodeStatus:
        try:
            return self.members[name].status
        except KeyError:
            raise PlacementError(f"{name!r} is not a cluster member") from None

    # -- wire format (rpc codec: ints, floats, strings, lists, dicts) -------

    def to_wire(self) -> dict:
        return {
            "epoch": self.epoch,
            "members": [
                {
                    "name": name,
                    "status": m.status.value,
                    "weight": m.weight,
                    "utilization": m.utilization,
                }
                for name, m in sorted(self.members.items())
            ],
        }

    @classmethod
    def from_wire(cls, wire: dict) -> "TopologyView":
        members = {}
        for item in wire.get("members", []):
            members[str(item["name"])] = MemberInfo(
                status=NodeStatus(str(item["status"])),
                weight=float(item.get("weight", 1.0)),
                utilization=float(item.get("utilization", 0.0)),
            )
        return cls(epoch=int(wire["epoch"]), members=members)


class Membership:
    """The authoritative membership record (the coordinator's state).

    Mutations return the new :class:`TopologyView`; every mutation bumps
    the epoch exactly once. Utilization refreshes do *not* bump the epoch —
    they piggyback on the next published change."""

    def __init__(
        self,
        names,
        *,
        default_weight: float = 1.0,
        weights: "dict[str, float] | None" = None,
    ):
        names = list(names)
        if not names:
            raise PlacementError("membership needs at least one node")
        weights = dict(weights or {})
        unknown = sorted(set(weights) - set(names))
        if unknown:
            raise PlacementError(f"weights given for non-members: {unknown}")
        for name, weight in weights.items():
            if weight <= 0:
                raise PlacementError(
                    f"member {name!r} needs a positive weight, got {weight}"
                )
        self._epoch = 1
        self._members: dict[str, MemberInfo] = {
            name: MemberInfo(
                NodeStatus.ACTIVE, float(weights.get(name, default_weight))
            )
            for name in names
        }

    @property
    def epoch(self) -> int:
        return self._epoch

    def names(self) -> list[str]:
        return sorted(self._members)

    def status(self, name: str) -> NodeStatus:
        return self.view().status(name)

    def view(self) -> TopologyView:
        return TopologyView(self._epoch, dict(self._members))

    def update_utilization(self, utilization: dict[str, float]) -> None:
        """Refresh the per-member allocator-utilization sample (no epoch
        bump; callers publish the change alongside a membership event)."""
        for name, u in utilization.items():
            member = self._members.get(name)
            if member is not None:
                self._members[name] = replace(member, utilization=float(u))

    # -- transitions ---------------------------------------------------------

    def _member(self, name: str) -> MemberInfo:
        try:
            return self._members[name]
        except KeyError:
            raise PlacementError(f"{name!r} is not a cluster member") from None

    def _bump(self) -> TopologyView:
        self._epoch += 1
        return self.view()

    def join(self, name: str, weight: float = 1.0) -> TopologyView:
        if name in self._members:
            raise PlacementError(f"{name!r} is already a cluster member")
        if weight <= 0:
            raise PlacementError("member weight must be positive")
        self._members[name] = MemberInfo(NodeStatus.ACTIVE, float(weight))
        return self._bump()

    def drain(self, name: str) -> TopologyView:
        member = self._member(name)
        if member.status is NodeStatus.DRAINING:
            raise PlacementError(f"{name!r} is already draining")
        self._members[name] = replace(member, status=NodeStatus.DRAINING)
        return self._bump()

    def mark_down(self, name: str) -> TopologyView:
        member = self._member(name)
        if member.status is NodeStatus.DOWN:
            return self.view()
        self._members[name] = replace(member, status=NodeStatus.DOWN)
        return self._bump()

    def reactivate(self, name: str) -> TopologyView:
        member = self._member(name)
        if member.status is NodeStatus.ACTIVE:
            return self.view()
        self._members[name] = replace(member, status=NodeStatus.ACTIVE)
        return self._bump()

    def remove(self, name: str) -> TopologyView:
        member = self._member(name)
        if member.status is NodeStatus.ACTIVE:
            raise PlacementError(
                f"cannot remove ACTIVE member {name!r}; drain it first"
            )
        if len(self._members) == 1:
            raise PlacementError("cannot remove the last cluster member")
        del self._members[name]
        return self._bump()

    def reconcile(self, suspects) -> TopologyView | None:
        """Fold failure-detector suspicion into membership: every suspected
        ACTIVE member goes DOWN. Returns the new view if anything changed
        (one epoch bump for the whole batch), else None."""
        changed = False
        for name in sorted(suspects):
            member = self._members.get(name)
            if member is not None and member.status is NodeStatus.ACTIVE:
                self._members[name] = replace(member, status=NodeStatus.DOWN)
                changed = True
        return self._bump() if changed else None

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}:{m.status.value}" for name, m in sorted(self._members.items())
        )
        return f"Membership(epoch={self._epoch}, {parts})"
