"""Live migration of sealed objects between disaggregated stores.

The move is a two-phase *pull* driven from the source side:

1. ``MigratePrepare`` — the destination allocates a fresh extent (new,
   higher integrity-header generation; header written *unsealed*) and pulls
   the payload zero-copy over the ThymesisFlow fabric from the source's
   exposed region — bulk bytes never touch the LAN, exactly like
   replication.
2. ``MigrateCommit`` — the destination seals: the payload CRC is computed,
   the seal flag flips in-region, and the descriptor becomes visible to
   Lookup atomically (under the destination's table mutex).

Only after a successful commit does the source retire its copy through the
existing retire-before-free path: the in-region generation is bumped and
the seal flag cleared *before* the extent returns to the allocator, so an
in-flight remote reader holding the old descriptor observes a typed
``StaleDescriptorError``, re-looks-up once, and lands on the new home. A
source copy still referenced by readers is left in place and retired later
(``flush_deferred_retires``) — migration never yanks bytes out from under
a reader.

Crash safety falls out of the phase split: if the destination dies between
prepare and commit, the commit fails UNAVAILABLE, the source keeps its copy
(still the published one), and the destination's half-copied extent has an
*unsealed* header — restart recovery reclaims it as free space and the
scrubber finds no orphan.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import RpcStatusError
from repro.common.ids import ObjectID
from repro.obs.metrics import CounterGroup
from repro.rpc.overload import DeadlineBudget
from repro.rpc.status import StatusCode


@dataclass(frozen=True)
class MigrationResult:
    """Outcome of one attempted object move."""

    object_id: ObjectID
    source: str
    dest: str
    status: str  # 'migrated' | 'already_placed' | 'aborted'
    bytes_moved: int = 0
    # False when the source copy is pinned by in-flight readers and its
    # retirement was deferred to a later rebalancer tick.
    source_retired: bool = True
    detail: str = ""

    @property
    def moved(self) -> bool:
        return self.status in ("migrated", "already_placed")


class MigrationEngine:
    """Source-driven executor of the prepare/commit protocol."""

    def __init__(self, clock, *, tracer=None, spans=None):
        self._clock = clock
        self._tracer = tracer
        self.spans = spans
        self.counters = CounterGroup()
        self._m_latency = None
        self._m_bytes = None

    def attach_metrics(self, registry) -> None:
        if not getattr(registry, "enabled", True):
            return
        registry.register_group(self.counters, "placement")
        self._m_latency = registry.histogram(
            "placement_migration_latency_ns",
            "Simulated wall time of one object migration "
            "(prepare + fabric pull + commit + source retire).",
        ).labels()
        self._m_bytes = registry.histogram(
            "placement_migration_bytes",
            "Payload size of each completed migration.",
        ).labels()

    def migrate(
        self,
        source_store,
        dest_name: str,
        object_id: ObjectID,
        *,
        reason: str = "rebalance",
    ) -> MigrationResult:
        """Move *object_id* from *source_store* to peer *dest_name*.

        Never raises for the expected failure modes (object vanished,
        destination unreachable mid-protocol) — those come back as an
        ``aborted`` result so the rebalancer can retry on a later tick.
        Unexpected RPC statuses still raise. *reason* labels who asked
        (``rebalance``, or the tier engine's ``promote``/``demote``) in the
        span annotation and the per-reason counters.
        """
        if self.spans is not None:
            with self.spans.span(
                "migrate",
                "migrate",
                node=source_store.name,
                dest=dest_name,
                object_id=str(object_id),
                reason=reason,
            ) as sp:
                result = self._migrate_inner(source_store, dest_name, object_id)
                sp.annotate(status=result.status, bytes=result.bytes_moved)
                if result.moved:
                    self.counters.inc(f"migrations_{reason}")
                return result
        result = self._migrate_inner(source_store, dest_name, object_id)
        if result.moved:
            self.counters.inc(f"migrations_{reason}")
        return result

    def _migrate_inner(
        self, source_store, dest_name: str, object_id: ObjectID
    ) -> MigrationResult:
        start_ns = self._clock.now_ns
        source = source_store.name
        descriptor = source_store.migration_descriptor(object_id)
        if descriptor is None:
            # Deleted/evicted/quarantined since the plan was computed.
            self.counters.inc("migrations_aborted")
            return MigrationResult(
                object_id, source, dest_name, "aborted",
                detail="source copy no longer migratable",
            )
        stub = source_store.peer(dest_name).stub
        holders = [
            name
            for name in source_store.replica_locations(object_id)
            if name != dest_name
        ]
        # One deadline budget for the whole pull: the commit gets whatever
        # the prepare (which includes the fabric transfer) left over.
        budget = DeadlineBudget.for_stub(stub, self._clock)
        try:
            prepared = stub.MigratePrepare(
                {
                    "source": source,
                    "object_id": object_id.binary(),
                    "offset": descriptor["offset"],
                    "data_size": descriptor["data_size"],
                    "metadata": descriptor["metadata"],
                    "holders": holders,
                },
                **budget.kwargs(),
            )
            state = prepared.get("state", "prepared")
            if state != "sealed":
                stub.MigrateCommit(
                    {"object_id": object_id.binary()}, **budget.kwargs()
                )
        except RpcStatusError as exc:
            if exc.code in (
                StatusCode.UNAVAILABLE,
                StatusCode.DEADLINE_EXCEEDED,
                StatusCode.RESOURCE_EXHAUSTED,
            ):
                # Destination died, partitioned, or shed us under overload
                # mid-protocol. The source copy stays published; a
                # half-pulled destination extent is unsealed and will be
                # reclaimed by restart recovery.
                self.counters.inc("migrations_aborted")
                return MigrationResult(
                    object_id, source, dest_name, "aborted", detail=str(exc)
                )
            raise
        retired = source_store.retire_migrated(object_id)
        if not retired:
            self.counters.inc("migration_retires_deferred")
        size = int(descriptor["data_size"])
        if state == "sealed":
            # The destination already held a sealed copy (re-driven after a
            # source crash, or it was a replica holder that got promoted):
            # nothing crossed the fabric, but the object is now home.
            self.counters.inc("migrations_already_placed")
            status = "already_placed"
            moved = 0
        else:
            self.counters.inc("migrations_completed")
            self.counters.inc("migration_bytes_moved", size)
            status = "migrated"
            moved = size
            if self._m_bytes is not None:
                self._m_bytes.observe(size)
        if self._m_latency is not None:
            self._m_latency.observe(self._clock.now_ns - start_ns)
        return MigrationResult(
            object_id, source, dest_name, status,
            bytes_moved=moved, source_retired=retired,
        )
