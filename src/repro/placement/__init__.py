"""repro.placement — elastic membership, consistent-hash placement, and
live object migration for the disaggregated mesh.

See docs/architecture.md "Placement & elasticity" for the epoch model and
the migration safety argument.
"""

from repro.placement.membership import (
    MemberInfo,
    Membership,
    NodeStatus,
    TopologyView,
)
from repro.placement.migrate import MigrationEngine, MigrationResult
from repro.placement.rebalance import ConvergenceReport, Rebalancer, TickReport
from repro.placement.ring import HashRing, capacity_derate

__all__ = [
    "NodeStatus",
    "MemberInfo",
    "TopologyView",
    "Membership",
    "HashRing",
    "capacity_derate",
    "MigrationEngine",
    "MigrationResult",
    "Rebalancer",
    "TickReport",
    "ConvergenceReport",
]
