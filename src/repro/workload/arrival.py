"""Arrival processes on simulated time: when requests enter the system.

Two families, matching the two honest ways to load a system:

* **Open loop** — arrivals are an inhomogeneous Poisson process whose rate
  follows a diurnal curve; requests arrive whether or not the cluster
  keeps up, so measured latency includes queueing delay. Generated ahead
  of time by Lewis–Shedler thinning against the peak rate, a pure function
  of one :class:`DeterministicRng` stream.
* **Closed loop** — N concurrent clients, each issuing its next request a
  think time after the previous one completes. Load is self-limiting, so
  arrival times can only be resolved *during* the run;
  :func:`closed_loop_next` is the one-step rule the runner applies.

Times are integer simulated nanoseconds throughout.
"""

from __future__ import annotations

import math

from repro.common.clock import NS_PER_S
from repro.common.rng import DeterministicRng


def diurnal_rate(
    t_s: float, base_rate_ops_per_s: float, amplitude: float, period_s: float
) -> float:
    """Instantaneous arrival rate at time *t_s*.

    ``base * (1 + amplitude * sin(2πt/period))`` — a smooth day/night
    cycle; ``amplitude`` 0 is a flat Poisson process.
    """
    return base_rate_ops_per_s * (
        1.0 + amplitude * math.sin(2.0 * math.pi * t_s / period_s)
    )


def open_loop_arrivals(
    rng: DeterministicRng,
    n: int,
    base_rate_ops_per_s: float,
    *,
    amplitude: float = 0.0,
    period_s: float = 1.0,
    start_ns: int = 0,
) -> list[int]:
    """*n* arrival timestamps (ns, nondecreasing) from the diurnal curve.

    Lewis–Shedler thinning: candidate gaps are drawn from a homogeneous
    Poisson process at the peak rate ``base * (1 + amplitude)``; each
    candidate is kept with probability ``rate(t) / peak``. Exactly the
    first *n* accepted arrivals are returned, so the draw count — and
    therefore every later RNG consumer — depends only on (seed, scenario).
    """
    if n <= 0:
        raise ValueError("need a positive arrival count")
    if base_rate_ops_per_s <= 0:
        raise ValueError("base rate must be positive")
    if not 0.0 <= amplitude < 1.0:
        raise ValueError("diurnal amplitude must be in [0, 1)")
    if period_s <= 0:
        raise ValueError("diurnal period must be positive")
    peak = base_rate_ops_per_s * (1.0 + amplitude)
    t_ns = float(start_ns)
    out: list[int] = []
    while len(out) < n:
        # Exponential gap at the peak rate (inverse CDF on a uniform draw;
        # the 1-u guard keeps log() finite).
        u = rng.uniform(0.0, 1.0)
        gap_s = -math.log(max(1.0 - u, 1e-300)) / peak
        t_ns += gap_s * NS_PER_S
        if amplitude == 0.0:
            out.append(int(t_ns))
            continue
        accept = rng.uniform(0.0, 1.0)
        if accept * peak <= diurnal_rate(t_ns / NS_PER_S,
                                         base_rate_ops_per_s,
                                         amplitude, period_s):
            out.append(int(t_ns))
    return out


def closed_loop_next(completion_ns: int, think_time_us: float) -> int:
    """The next issue time for a closed-loop client: completion + think."""
    if think_time_us < 0:
        raise ValueError("think time cannot be negative")
    return int(completion_ns) + int(round(think_time_us * 1_000.0))
