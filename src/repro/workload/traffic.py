"""The seeded op-stream generator: scenario → deterministic WorkloadOps.

``generate_stream(scenario, seed)`` is a pure function — same scenario
and seed, byte-identical op list. Each draw family (keys, op kinds,
tenants, payload sizes, arrival times) gets its own named RNG stream via
:meth:`DeterministicRng.spawn`, so adding draws to one family never
perturbs the others (the repo's randomness discipline).

Key references are *slots* in ``[0, population.objects)``: a slot is a
stable name whose current object version the runner tracks (a write
replaces the slot's object, a delete empties it). Scans touch
``scan_length`` consecutive slots starting at the drawn one, the
range-read shape of analytics workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.rng import DeterministicRng
from repro.workload.arrival import open_loop_arrivals
from repro.workload.popularity import _unit_draws, access_sequence_for
from repro.workload.scenario import Scenario


@dataclass(frozen=True)
class WorkloadOp:
    """One generated request.

    ``at_ns`` is the open-loop arrival timestamp; ``None`` in closed-loop
    mode, where issue times only exist once the run resolves them.
    ``size_bytes`` is the payload size for writes and 0 otherwise.
    """

    seq: int
    at_ns: int | None
    tenant: str
    kind: str
    slot: int
    size_bytes: int = 0


def _weighted_names(
    rng: DeterministicRng, pairs: list[tuple[str, float]], n: int
) -> list[str]:
    """*n* weighted draws over ``(name, weight)`` pairs, one unit draw each."""
    live = [(name, float(w)) for name, w in pairs if w > 0]
    if not live:
        raise ValueError("need at least one positive weight")
    if len(live) == 1:
        return [live[0][0]] * n
    names = [name for name, _ in live]
    weights = np.array([w for _, w in live], dtype=np.float64)
    cumulative = np.cumsum(weights / weights.sum())
    draws = _unit_draws(rng, n)
    picks = np.searchsorted(cumulative, draws, side="right")
    return [names[int(i)] for i in np.minimum(picks, len(names) - 1)]


def generate_stream(
    scenario: Scenario, seed: int | None = None
) -> list[WorkloadOp]:
    """The full op stream for *scenario* (``seed`` overrides the file's)."""
    seed = scenario.seed if seed is None else int(seed)
    traffic = scenario.traffic
    n = traffic.ops
    root = DeterministicRng(seed)

    pop = traffic.popularity
    slots = access_sequence_for(
        pop.model,
        root.spawn("keys"),
        scenario.population.objects,
        n,
        s=pop.s,
        hot_fraction=pop.hot_fraction,
        hot_weight=pop.hot_weight,
    )
    kinds = _weighted_names(root.spawn("mix"), list(traffic.mix), n)
    tenants = _weighted_names(
        root.spawn("tenants"),
        [(t.name, float(t.weight)) for t in scenario.tenants],
        n,
    )

    arrival = traffic.arrival
    if arrival.mode == "open":
        at: list[int | None] = list(
            open_loop_arrivals(
                root.spawn("arrivals"),
                n,
                arrival.base_rate_ops_per_s,
                amplitude=arrival.diurnal_amplitude,
                period_s=arrival.diurnal_period_s,
            )
        )
    else:
        at = [None] * n

    size_rng = root.spawn("sizes")
    size_model = scenario.population.size
    ops: list[WorkloadOp] = []
    for seq in range(n):
        kind = kinds[seq]
        ops.append(
            WorkloadOp(
                seq=seq,
                at_ns=at[seq],
                tenant=tenants[seq],
                kind=kind,
                slot=int(slots[seq]),
                size_bytes=size_model.draw(size_rng) if kind == "write" else 0,
            )
        )
    return ops
