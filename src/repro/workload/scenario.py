"""Versioned, seeded scenario files: the traffic plane's input format.

A *scenario* is a declarative description of a whole experiment — cluster
shape (node count, heterogeneous placement weights, link profile), object
population (key-space size, payload size distribution), traffic model
(popularity, op mix, open/closed-loop arrivals) and tenants (weights and
admission quotas). Scenarios load from JSON (or TOML on Python ≥ 3.11)
into frozen dataclasses with strict validation: unknown fields and invalid
values are rejected with the offending path, so a typo in a committed
scenario fails loudly instead of silently changing the benchmark.

The pair ``(scenario, seed)`` fully determines the generated op stream
(see :mod:`repro.workload.traffic`) and — because the cluster runs on
simulated time — the emitted ``BENCH_workload_<name>.json`` artifact, byte
for byte. That is what makes the standing scenarios under
``benchmarks/scenarios/`` a perf trajectory rather than a point sample.
"""

from __future__ import annotations

import dataclasses
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

SCHEMA_VERSION = 1

_NAME_RE = re.compile(r"^[a-z0-9][a-z0-9._-]*$")

#: Op kinds a traffic mix may weight.
MIX_KINDS = ("read", "write", "delete", "scan")

ARRIVAL_MODES = ("open", "closed")


class ScenarioError(ValueError):
    """A scenario file failed validation; the message names the path."""


def _fail(path: str, message: str) -> "ScenarioError":
    return ScenarioError(f"{path}: {message}")


def _require_mapping(obj: object, path: str) -> dict:
    if not isinstance(obj, Mapping):
        raise _fail(path, f"expected an object/table, got {type(obj).__name__}")
    return dict(obj)


def _check_fields(data: dict, allowed: tuple[str, ...], path: str) -> None:
    unknown = sorted(set(data) - set(allowed))
    if unknown:
        raise _fail(
            path,
            f"unknown field(s) {unknown}; allowed: {sorted(allowed)}",
        )


def _number(data: dict, key: str, path: str, default, *, lo=None, hi=None,
            integer: bool = False):
    value = data.get(key, default)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise _fail(f"{path}.{key}", f"expected a number, got {value!r}")
    if integer:
        if int(value) != value:
            raise _fail(f"{path}.{key}", f"expected an integer, got {value!r}")
        value = int(value)
    else:
        value = float(value)
    if lo is not None and value < lo:
        raise _fail(f"{path}.{key}", f"must be >= {lo}, got {value}")
    if hi is not None and value > hi:
        raise _fail(f"{path}.{key}", f"must be <= {hi}, got {value}")
    return value


def _string(data: dict, key: str, path: str, default: str | None = None) -> str:
    value = data.get(key, default)
    if not isinstance(value, str):
        raise _fail(f"{path}.{key}", f"expected a string, got {value!r}")
    return value


# --------------------------------------------------------------------------- shape


@dataclass(frozen=True)
class NodeProfile:
    """A homogeneous group of nodes within a heterogeneous cluster.

    ``weight`` feeds the consistent-hash ring (a weight-2 node owns twice
    the key space — the scenario-level stand-in for a memory-rich host).
    """

    count: int
    weight: float = 1.0

    @classmethod
    def from_obj(cls, obj: object, path: str) -> "NodeProfile":
        data = _require_mapping(obj, path)
        _check_fields(data, ("count", "weight"), path)
        return cls(
            count=_number(data, "count", path, None, lo=1, integer=True),
            weight=_number(data, "weight", path, 1.0, lo=0.001),
        )

    def to_obj(self) -> dict:
        return {"count": self.count, "weight": self.weight}


@dataclass(frozen=True)
class LinkProfile:
    """Fabric/RPC overrides: the scenario's interconnect generation.

    Multipliers scale the calibrated paper defaults, so ``1.0`` everywhere
    reproduces the IC922 testbed and e.g. ``rpc_round_trip_factor: 0.5``
    models a faster metadata network without touching calibration.
    """

    fabric_bandwidth_factor: float = 1.0
    fabric_latency_factor: float = 1.0
    rpc_round_trip_factor: float = 1.0

    FIELDS = (
        "fabric_bandwidth_factor",
        "fabric_latency_factor",
        "rpc_round_trip_factor",
    )

    @classmethod
    def from_obj(cls, obj: object, path: str) -> "LinkProfile":
        data = _require_mapping(obj, path)
        _check_fields(data, cls.FIELDS, path)
        return cls(
            **{
                name: _number(data, name, path, 1.0, lo=0.001)
                for name in cls.FIELDS
            }
        )

    def to_obj(self) -> dict:
        return {name: getattr(self, name) for name in self.FIELDS}


@dataclass(frozen=True)
class ClusterShape:
    """How the cluster under test is built."""

    profiles: tuple[NodeProfile, ...] = (NodeProfile(count=3),)
    capacity_mib: int = 64
    replicas: int = 1
    placement: bool = True
    link: LinkProfile = field(default_factory=LinkProfile)

    @property
    def n_nodes(self) -> int:
        return sum(p.count for p in self.profiles)

    def node_weights(self) -> dict[str, float]:
        """node name -> placement weight, profiles laid out in order."""
        weights: dict[str, float] = {}
        index = 0
        for profile in self.profiles:
            for _ in range(profile.count):
                weights[f"node{index}"] = profile.weight
                index += 1
        return weights

    @classmethod
    def from_obj(cls, obj: object, path: str) -> "ClusterShape":
        data = _require_mapping(obj, path)
        _check_fields(
            data,
            ("nodes", "node_profiles", "capacity_mib", "replicas",
             "placement", "link"),
            path,
        )
        if "nodes" in data and "node_profiles" in data:
            raise _fail(path, "give either 'nodes' or 'node_profiles', not both")
        if "node_profiles" in data:
            raw = data["node_profiles"]
            if not isinstance(raw, list) or not raw:
                raise _fail(f"{path}.node_profiles", "expected a non-empty list")
            profiles = tuple(
                NodeProfile.from_obj(item, f"{path}.node_profiles[{i}]")
                for i, item in enumerate(raw)
            )
        else:
            profiles = (
                NodeProfile(
                    count=_number(data, "nodes", path, 3, lo=2, integer=True)
                ),
            )
        placement = data.get("placement", True)
        if not isinstance(placement, bool):
            raise _fail(f"{path}.placement", f"expected a bool, got {placement!r}")
        shape = cls(
            profiles=profiles,
            capacity_mib=_number(
                data, "capacity_mib", path, 64, lo=1, integer=True
            ),
            replicas=_number(data, "replicas", path, 1, lo=1, integer=True),
            placement=placement,
            link=LinkProfile.from_obj(data.get("link", {}), f"{path}.link"),
        )
        if shape.n_nodes < 2:
            raise _fail(path, "a disaggregated cluster needs >= 2 nodes")
        if shape.replicas > shape.n_nodes:
            raise _fail(
                f"{path}.replicas",
                f"{shape.replicas} copies do not fit on {shape.n_nodes} nodes",
            )
        if not shape.placement and any(p.weight != 1.0 for p in shape.profiles):
            raise _fail(
                f"{path}.node_profiles",
                "heterogeneous weights need placement: true (weights feed "
                "the consistent-hash ring)",
            )
        return shape

    def to_obj(self) -> dict:
        return {
            "node_profiles": [p.to_obj() for p in self.profiles],
            "capacity_mib": self.capacity_mib,
            "replicas": self.replicas,
            "placement": self.placement,
            "link": self.link.to_obj(),
        }


# --------------------------------------------------------------------------- population


@dataclass(frozen=True)
class SizeDistribution:
    """Payload size model: ``fixed`` bytes, ``uniform`` in [min, max], or
    ``choice`` over an explicit list (all draws 64-byte-aligned by the
    store anyway)."""

    dist: str = "fixed"
    bytes: int = 4096
    min_bytes: int = 1024
    max_bytes: int = 16384
    choices: tuple[int, ...] = ()

    @classmethod
    def from_obj(cls, obj: object, path: str) -> "SizeDistribution":
        data = _require_mapping(obj, path)
        _check_fields(
            data, ("dist", "bytes", "min_bytes", "max_bytes", "choices"), path
        )
        dist = _string(data, "dist", path, "fixed")
        if dist == "fixed":
            _check_fields(data, ("dist", "bytes"), path)
            return cls(dist=dist, bytes=_number(data, "bytes", path, 4096, lo=1,
                                                integer=True))
        if dist == "uniform":
            _check_fields(data, ("dist", "min_bytes", "max_bytes"), path)
            out = cls(
                dist=dist,
                min_bytes=_number(data, "min_bytes", path, 1024, lo=1,
                                  integer=True),
                max_bytes=_number(data, "max_bytes", path, 16384, lo=1,
                                  integer=True),
            )
            if out.min_bytes > out.max_bytes:
                raise _fail(path, "min_bytes must be <= max_bytes")
            return out
        if dist == "choice":
            _check_fields(data, ("dist", "choices"), path)
            raw = data.get("choices")
            if not isinstance(raw, list) or not raw:
                raise _fail(f"{path}.choices", "expected a non-empty list")
            choices = []
            for i, item in enumerate(raw):
                if isinstance(item, bool) or not isinstance(item, int) or item < 1:
                    raise _fail(f"{path}.choices[{i}]",
                                f"expected a positive integer, got {item!r}")
                choices.append(item)
            return cls(dist=dist, choices=tuple(choices))
        raise _fail(f"{path}.dist",
                    f"unknown size distribution {dist!r}; "
                    "have ('fixed', 'uniform', 'choice')")

    def to_obj(self) -> dict:
        if self.dist == "fixed":
            return {"dist": "fixed", "bytes": self.bytes}
        if self.dist == "uniform":
            return {"dist": "uniform", "min_bytes": self.min_bytes,
                    "max_bytes": self.max_bytes}
        return {"dist": "choice", "choices": list(self.choices)}

    def draw(self, rng) -> int:
        if self.dist == "fixed":
            return self.bytes
        if self.dist == "uniform":
            return int(rng.integer(self.min_bytes, self.max_bytes + 1))
        return int(rng.choice(list(self.choices)))

    def max_draw(self) -> int:
        if self.dist == "fixed":
            return self.bytes
        if self.dist == "uniform":
            return self.max_bytes
        return max(self.choices)


@dataclass(frozen=True)
class Population:
    """The key space: how many slots exist and how big their payloads are."""

    objects: int = 100
    size: SizeDistribution = field(default_factory=SizeDistribution)

    @classmethod
    def from_obj(cls, obj: object, path: str) -> "Population":
        data = _require_mapping(obj, path)
        _check_fields(data, ("objects", "size"), path)
        return cls(
            objects=_number(data, "objects", path, 100, lo=1, integer=True),
            size=SizeDistribution.from_obj(data.get("size", {}), f"{path}.size"),
        )

    def to_obj(self) -> dict:
        return {"objects": self.objects, "size": self.size.to_obj()}


# --------------------------------------------------------------------------- traffic


@dataclass(frozen=True)
class Popularity:
    model: str = "uniform"
    s: float = 1.1
    hot_fraction: float = 0.1
    hot_weight: float = 0.9

    @classmethod
    def from_obj(cls, obj: object, path: str) -> "Popularity":
        data = _require_mapping(obj, path)
        model = _string(data, "model", path, "uniform")
        if model == "uniform":
            _check_fields(data, ("model",), path)
            return cls(model=model)
        if model == "zipfian":
            _check_fields(data, ("model", "s"), path)
            return cls(model=model, s=_number(data, "s", path, 1.1, lo=0.01))
        if model == "hotspot":
            _check_fields(data, ("model", "hot_fraction", "hot_weight"), path)
            return cls(
                model=model,
                hot_fraction=_number(data, "hot_fraction", path, 0.1,
                                     lo=0.001, hi=1.0),
                hot_weight=_number(data, "hot_weight", path, 0.9,
                                   lo=0.0, hi=1.0),
            )
        raise _fail(f"{path}.model",
                    f"unknown popularity model {model!r}; "
                    "have ('uniform', 'zipfian', 'hotspot')")

    def to_obj(self) -> dict:
        if self.model == "uniform":
            return {"model": "uniform"}
        if self.model == "zipfian":
            return {"model": "zipfian", "s": self.s}
        return {"model": "hotspot", "hot_fraction": self.hot_fraction,
                "hot_weight": self.hot_weight}


@dataclass(frozen=True)
class Arrival:
    """When requests enter the system.

    * ``open`` — arrivals are an inhomogeneous Poisson process whose rate
      follows a diurnal curve ``base * (1 + amplitude * sin(2πt/period))``;
      requests arrive whether or not the system keeps up, so latency
      includes queueing delay (the honest production shape).
    * ``closed`` — ``clients`` concurrent clients, each issuing the next
      request ``think_time_us`` after the previous one completes; load is
      self-limiting (the classic benchmark-harness shape).
    """

    mode: str = "open"
    base_rate_ops_per_s: float = 5000.0
    diurnal_amplitude: float = 0.0
    diurnal_period_s: float = 1.0
    clients: int = 4
    think_time_us: float = 100.0

    @classmethod
    def from_obj(cls, obj: object, path: str) -> "Arrival":
        data = _require_mapping(obj, path)
        mode = _string(data, "mode", path, "open")
        if mode == "open":
            _check_fields(
                data,
                ("mode", "base_rate_ops_per_s", "diurnal_amplitude",
                 "diurnal_period_s"),
                path,
            )
            return cls(
                mode=mode,
                base_rate_ops_per_s=_number(
                    data, "base_rate_ops_per_s", path, 5000.0, lo=0.001
                ),
                diurnal_amplitude=_number(
                    data, "diurnal_amplitude", path, 0.0, lo=0.0, hi=0.99
                ),
                diurnal_period_s=_number(
                    data, "diurnal_period_s", path, 1.0, lo=0.000001
                ),
            )
        if mode == "closed":
            _check_fields(data, ("mode", "clients", "think_time_us"), path)
            return cls(
                mode=mode,
                clients=_number(data, "clients", path, 4, lo=1, integer=True),
                think_time_us=_number(
                    data, "think_time_us", path, 100.0, lo=0.0
                ),
            )
        raise _fail(f"{path}.mode",
                    f"unknown arrival mode {mode!r}; have {ARRIVAL_MODES}")

    def to_obj(self) -> dict:
        if self.mode == "open":
            return {
                "mode": "open",
                "base_rate_ops_per_s": self.base_rate_ops_per_s,
                "diurnal_amplitude": self.diurnal_amplitude,
                "diurnal_period_s": self.diurnal_period_s,
            }
        return {"mode": "closed", "clients": self.clients,
                "think_time_us": self.think_time_us}


@dataclass(frozen=True)
class Traffic:
    ops: int = 1000
    mix: tuple[tuple[str, int], ...] = (
        ("read", 70), ("write", 20), ("delete", 5), ("scan", 5)
    )
    scan_length: int = 8
    popularity: Popularity = field(default_factory=Popularity)
    arrival: Arrival = field(default_factory=Arrival)

    @classmethod
    def from_obj(cls, obj: object, path: str) -> "Traffic":
        data = _require_mapping(obj, path)
        _check_fields(
            data, ("ops", "mix", "scan_length", "popularity", "arrival"), path
        )
        mix_data = _require_mapping(
            data.get("mix", {"read": 70, "write": 20, "delete": 5, "scan": 5}),
            f"{path}.mix",
        )
        _check_fields(mix_data, MIX_KINDS, f"{path}.mix")
        mix = tuple(
            (kind, _number(mix_data, kind, f"{path}.mix", 0, lo=0, integer=True))
            for kind in MIX_KINDS
        )
        if sum(w for _, w in mix) <= 0:
            raise _fail(f"{path}.mix", "op mix weights must sum to > 0")
        return cls(
            ops=_number(data, "ops", path, 1000, lo=1, integer=True),
            mix=mix,
            scan_length=_number(data, "scan_length", path, 8, lo=2,
                                integer=True),
            popularity=Popularity.from_obj(
                data.get("popularity", {}), f"{path}.popularity"
            ),
            arrival=Arrival.from_obj(data.get("arrival", {}), f"{path}.arrival"),
        )

    def to_obj(self) -> dict:
        return {
            "ops": self.ops,
            "mix": {kind: weight for kind, weight in self.mix},
            "scan_length": self.scan_length,
            "popularity": self.popularity.to_obj(),
            "arrival": self.arrival.to_obj(),
        }


# --------------------------------------------------------------------------- overload


@dataclass(frozen=True)
class OverloadSpec:
    """Server-side overload control plus the client-side taming knobs.

    Present in a scenario, it gives every server a finite service rate and
    bounded request queue (shedding RESOURCE_EXHAUSTED beyond it), stamps
    every operation with a deadline (propagated hop to hop so servers can
    shed expired work), caps client retry amplification with a token-bucket
    retry budget, and optionally enables quantile-delay hedged reads.
    Absent, everything stays at the legacy infinite-capacity behaviour.

    ``burst_backlog_ms``/``burst_period_s`` model recurring stalls on one
    node (a GC pause, a compaction, a noisy neighbour): every period the
    runner injects that much queued work into ``burst_node``'s admission
    model, which then drains it at the service rate — the deterministic
    traffic-plane analogue of the chaos plane's ``OverloadBurst``.
    """

    service_rate_ops_per_s: float = 0.0
    queue_depth: int = 64
    queue_discipline: str = "fifo"
    shed_expired: bool = True
    op_deadline_ms: float = 0.0
    retry_budget_per_s: float = 0.0
    retry_budget_burst: int = 10
    hedge_quantile: float = 0.0
    hedge_min_samples: int = 20
    burst_backlog_ms: float = 0.0
    burst_period_s: float = 0.0
    burst_node: int = 0

    FIELDS = (
        "service_rate_ops_per_s", "queue_depth", "queue_discipline",
        "shed_expired", "op_deadline_ms", "retry_budget_per_s",
        "retry_budget_burst", "hedge_quantile", "hedge_min_samples",
        "burst_backlog_ms", "burst_period_s", "burst_node",
    )

    @classmethod
    def from_obj(cls, obj: object, path: str) -> "OverloadSpec":
        data = _require_mapping(obj, path)
        _check_fields(data, cls.FIELDS, path)
        discipline = _string(data, "queue_discipline", path, "fifo")
        if discipline not in ("fifo", "lifo"):
            raise _fail(f"{path}.queue_discipline",
                        f"unknown discipline {discipline!r}; "
                        "have ('fifo', 'lifo')")
        shed = data.get("shed_expired", True)
        if not isinstance(shed, bool):
            raise _fail(f"{path}.shed_expired",
                        f"expected a bool, got {shed!r}")
        return cls(
            service_rate_ops_per_s=_number(
                data, "service_rate_ops_per_s", path, 0.0, lo=0.0
            ),
            queue_depth=_number(data, "queue_depth", path, 64, lo=0,
                                integer=True),
            queue_discipline=discipline,
            shed_expired=shed,
            op_deadline_ms=_number(data, "op_deadline_ms", path, 0.0, lo=0.0),
            retry_budget_per_s=_number(
                data, "retry_budget_per_s", path, 0.0, lo=0.0
            ),
            retry_budget_burst=_number(
                data, "retry_budget_burst", path, 10, lo=1, integer=True
            ),
            hedge_quantile=_number(
                data, "hedge_quantile", path, 0.0, lo=0.0, hi=0.999
            ),
            hedge_min_samples=_number(
                data, "hedge_min_samples", path, 20, lo=1, integer=True
            ),
            burst_backlog_ms=_number(
                data, "burst_backlog_ms", path, 0.0, lo=0.0
            ),
            burst_period_s=_number(data, "burst_period_s", path, 0.0, lo=0.0),
            burst_node=_number(data, "burst_node", path, 0, lo=0,
                               integer=True),
        )

    def to_obj(self) -> dict:
        return {name: getattr(self, name) for name in self.FIELDS}


# --------------------------------------------------------------------------- tracing


@dataclass(frozen=True)
class TracingSpec:
    """Distributed span tracing for the run (see :mod:`repro.obs.spans`).

    Present and enabled, every logical operation opens a root span whose
    observed latency is decomposed — nanosecond-exact — into queue /
    service / fabric / retry / hedge / client components, reported in the
    artifact's ``latency_attribution`` section. ``sample_rate`` gates how
    many full traces are *retained* (attribution always covers every op);
    errors, sheds, and the slowest ``tail_percentile`` of ops are always
    kept. Absent or disabled, the span plane is never built and artifacts
    are byte-identical to previous schema versions.
    """

    enabled: bool = True
    sample_rate: float = 1.0
    tail_percentile: float = 0.99
    flight_capacity: int = 512

    FIELDS = ("enabled", "sample_rate", "tail_percentile", "flight_capacity")

    @classmethod
    def from_obj(cls, obj: object, path: str) -> "TracingSpec":
        data = _require_mapping(obj, path)
        _check_fields(data, cls.FIELDS, path)
        enabled = data.get("enabled", True)
        if not isinstance(enabled, bool):
            raise _fail(f"{path}.enabled", f"expected a bool, got {enabled!r}")
        return cls(
            enabled=enabled,
            sample_rate=_number(
                data, "sample_rate", path, 1.0, lo=0.0, hi=1.0
            ),
            tail_percentile=_number(
                data, "tail_percentile", path, 0.99, lo=0.0, hi=1.0
            ),
            flight_capacity=_number(
                data, "flight_capacity", path, 512, lo=1, integer=True
            ),
        )

    def to_obj(self) -> dict:
        return {name: getattr(self, name) for name in self.FIELDS}


# --------------------------------------------------------------------------- tiering


@dataclass(frozen=True)
class TieringSpec:
    """Hot-object caching and local/far tier promotion & demotion
    (see :mod:`repro.tier`).

    Present, every node fronts its fabric reads with a bounded byte cache
    (TinyLFU-admitted, generation-coherent) and — when the cluster runs
    with placement — the tier engine promotes hot remote objects toward
    their readers and demotes cold sealed objects to capacity-rich nodes,
    budgeted ``bytes_per_tick_mib`` per engine tick, one tick every
    ``tick_every_ops`` executed operations. Absent, the tier plane is never
    built and artifacts are byte-identical to previous schema versions.
    """

    cache_capacity_mib: int = 8
    sketch_width: int = 512
    sketch_depth: int = 4
    heat_half_life_ms: float = 500.0
    heat_sample_rate: float = 1.0
    promote_min_heat: float = 3.0
    demote_watermark: float = 0.85
    demote_target: float = 0.70
    bytes_per_tick_mib: int = 4
    tick_every_ops: int = 64

    FIELDS = (
        "cache_capacity_mib", "sketch_width", "sketch_depth",
        "heat_half_life_ms", "heat_sample_rate", "promote_min_heat",
        "demote_watermark", "demote_target", "bytes_per_tick_mib",
        "tick_every_ops",
    )

    @classmethod
    def from_obj(cls, obj: object, path: str) -> "TieringSpec":
        data = _require_mapping(obj, path)
        _check_fields(data, cls.FIELDS, path)
        out = cls(
            cache_capacity_mib=_number(
                data, "cache_capacity_mib", path, 8, lo=0, integer=True
            ),
            sketch_width=_number(
                data, "sketch_width", path, 512, lo=16, integer=True
            ),
            sketch_depth=_number(
                data, "sketch_depth", path, 4, lo=1, integer=True
            ),
            heat_half_life_ms=_number(
                data, "heat_half_life_ms", path, 500.0, lo=0.001
            ),
            heat_sample_rate=_number(
                data, "heat_sample_rate", path, 1.0, lo=0.001, hi=1.0
            ),
            promote_min_heat=_number(
                data, "promote_min_heat", path, 3.0, lo=0.0
            ),
            demote_watermark=_number(
                data, "demote_watermark", path, 0.85, lo=0.01, hi=1.0
            ),
            demote_target=_number(
                data, "demote_target", path, 0.70, lo=0.01, hi=1.0
            ),
            bytes_per_tick_mib=_number(
                data, "bytes_per_tick_mib", path, 4, lo=1, integer=True
            ),
            tick_every_ops=_number(
                data, "tick_every_ops", path, 64, lo=1, integer=True
            ),
        )
        if out.demote_target >= out.demote_watermark:
            raise _fail(f"{path}.demote_target",
                        "must be < demote_watermark (the engine sheds from "
                        "the watermark down to the target)")
        return out

    def to_obj(self) -> dict:
        return {name: getattr(self, name) for name in self.FIELDS}


# --------------------------------------------------------------------------- rpc


@dataclass(frozen=True)
class RpcSpec:
    """Async RPC core knobs for the run (see :mod:`repro.rpc.aio`).

    Present, the runner drives the op stream through the event-loop task
    plane: many operations in flight per peer, id-list calls (Lookup,
    AddRef, NotifyDeleted) transparently coalesced into batched wire
    messages within ``batch_window_ns`` (up to ``max_batch`` ids), scans
    issued as one batched multi-get, and — when ``hedge_stagger_ns`` > 0 —
    scatter-gather lookups hedged to the next replica holder after the
    stagger. ``mode: "sync"`` keeps the block present but runs the legacy
    serial path. Absent, everything stays the unary baseline and artifacts
    are byte-identical to previous schema versions.
    """

    mode: str = "async"
    batch_window_ns: float = 50_000.0
    max_batch: int = 16
    hedge_stagger_ns: float = 0.0

    FIELDS = ("mode", "batch_window_ns", "max_batch", "hedge_stagger_ns")

    @classmethod
    def from_obj(cls, obj: object, path: str) -> "RpcSpec":
        data = _require_mapping(obj, path)
        _check_fields(data, cls.FIELDS, path)
        mode = _string(data, "mode", path, "async")
        if mode not in ("sync", "async"):
            raise _fail(f"{path}.mode",
                        f"unknown rpc mode {mode!r}; have ('sync', 'async')")
        return cls(
            mode=mode,
            batch_window_ns=_number(
                data, "batch_window_ns", path, 50_000.0, lo=0.0
            ),
            max_batch=_number(data, "max_batch", path, 16, lo=1, integer=True),
            hedge_stagger_ns=_number(
                data, "hedge_stagger_ns", path, 0.0, lo=0.0
            ),
        )

    def to_obj(self) -> dict:
        return {name: getattr(self, name) for name in self.FIELDS}


# --------------------------------------------------------------------------- tenants


@dataclass(frozen=True)
class QuotaSpec:
    """Admission limits for one tenant; ``None`` means unlimited."""

    max_stored_bytes: int | None = None
    ops_per_s: float | None = None
    burst_ops: int = 32
    write_bytes_per_s: float | None = None
    burst_bytes: int = 1 << 20

    FIELDS = ("max_stored_bytes", "ops_per_s", "burst_ops",
              "write_bytes_per_s", "burst_bytes")

    @classmethod
    def from_obj(cls, obj: object, path: str) -> "QuotaSpec":
        data = _require_mapping(obj, path)
        _check_fields(data, cls.FIELDS, path)
        out = {}
        for name in ("max_stored_bytes", "ops_per_s", "write_bytes_per_s"):
            if data.get(name) is not None:
                out[name] = _number(
                    data, name, path, None, lo=1,
                    integer=(name == "max_stored_bytes"),
                )
        out["burst_ops"] = _number(data, "burst_ops", path, 32, lo=1,
                                   integer=True)
        out["burst_bytes"] = _number(data, "burst_bytes", path, 1 << 20, lo=1,
                                     integer=True)
        return cls(**out)

    def to_obj(self) -> dict:
        out: dict = {"burst_ops": self.burst_ops, "burst_bytes": self.burst_bytes}
        for name in ("max_stored_bytes", "ops_per_s", "write_bytes_per_s"):
            value = getattr(self, name)
            if value is not None:
                out[name] = value
        return out


@dataclass(frozen=True)
class TenantSpec:
    name: str
    weight: int = 1
    quota: QuotaSpec = field(default_factory=QuotaSpec)

    @classmethod
    def from_obj(cls, obj: object, path: str) -> "TenantSpec":
        data = _require_mapping(obj, path)
        _check_fields(data, ("name", "weight", "quota"), path)
        name = _string(data, "name", path)
        if not _NAME_RE.match(name):
            raise _fail(f"{path}.name", f"invalid tenant name {name!r}")
        return cls(
            name=name,
            weight=_number(data, "weight", path, 1, lo=1, integer=True),
            quota=QuotaSpec.from_obj(data.get("quota", {}), f"{path}.quota"),
        )

    def to_obj(self) -> dict:
        return {"name": self.name, "weight": self.weight,
                "quota": self.quota.to_obj()}


# --------------------------------------------------------------------------- scenario


@dataclass(frozen=True)
class Scenario:
    """One fully-specified, seedable workload."""

    name: str
    description: str = ""
    seed: int = 2022
    cluster: ClusterShape = field(default_factory=ClusterShape)
    population: Population = field(default_factory=Population)
    traffic: Traffic = field(default_factory=Traffic)
    tenants: tuple[TenantSpec, ...] = (TenantSpec(name="default"),)
    overload: OverloadSpec | None = None
    tracing: TracingSpec | None = None
    tiering: TieringSpec | None = None
    rpc: RpcSpec | None = None

    FIELDS = ("schema_version", "name", "description", "seed", "cluster",
              "population", "traffic", "tenants", "overload", "tracing",
              "tiering", "rpc")

    @classmethod
    def from_obj(cls, obj: object, path: str = "scenario") -> "Scenario":
        data = _require_mapping(obj, path)
        _check_fields(data, cls.FIELDS, path)
        version = _number(data, "schema_version", path, SCHEMA_VERSION,
                          integer=True)
        if version != SCHEMA_VERSION:
            raise _fail(f"{path}.schema_version",
                        f"unsupported version {version} (this build reads "
                        f"{SCHEMA_VERSION})")
        name = _string(data, "name", path)
        if not _NAME_RE.match(name):
            raise _fail(f"{path}.name",
                        f"invalid scenario name {name!r} (lowercase "
                        "letters/digits/._- only; it names the artifact file)")
        tenants_raw = data.get("tenants", [{"name": "default"}])
        if not isinstance(tenants_raw, list) or not tenants_raw:
            raise _fail(f"{path}.tenants", "expected a non-empty list")
        tenants = tuple(
            TenantSpec.from_obj(item, f"{path}.tenants[{i}]")
            for i, item in enumerate(tenants_raw)
        )
        if len({t.name for t in tenants}) != len(tenants):
            raise _fail(f"{path}.tenants", "tenant names must be unique")
        scenario = cls(
            name=name,
            description=_string(data, "description", path, ""),
            seed=_number(data, "seed", path, 2022, lo=0, integer=True),
            cluster=ClusterShape.from_obj(
                data.get("cluster", {}), f"{path}.cluster"
            ),
            population=Population.from_obj(
                data.get("population", {}), f"{path}.population"
            ),
            traffic=Traffic.from_obj(data.get("traffic", {}), f"{path}.traffic"),
            tenants=tenants,
            overload=(
                OverloadSpec.from_obj(data["overload"], f"{path}.overload")
                if data.get("overload") is not None
                else None
            ),
            tracing=(
                TracingSpec.from_obj(data["tracing"], f"{path}.tracing")
                if data.get("tracing") is not None
                else None
            ),
            tiering=(
                TieringSpec.from_obj(data["tiering"], f"{path}.tiering")
                if data.get("tiering") is not None
                else None
            ),
            rpc=(
                RpcSpec.from_obj(data["rpc"], f"{path}.rpc")
                if data.get("rpc") is not None
                else None
            ),
        )
        if scenario.traffic.scan_length > scenario.population.objects:
            raise _fail(f"{path}.traffic.scan_length",
                        "scan_length cannot exceed the population size")
        return scenario

    def to_obj(self) -> dict:
        out = {
            "schema_version": SCHEMA_VERSION,
            "name": self.name,
            "description": self.description,
            "seed": self.seed,
            "cluster": self.cluster.to_obj(),
            "population": self.population.to_obj(),
            "traffic": self.traffic.to_obj(),
            "tenants": [t.to_obj() for t in self.tenants],
        }
        if self.overload is not None:
            out["overload"] = self.overload.to_obj()
        if self.tracing is not None:
            out["tracing"] = self.tracing.to_obj()
        if self.tiering is not None:
            out["tiering"] = self.tiering.to_obj()
        if self.rpc is not None:
            out["rpc"] = self.rpc.to_obj()
        return out

    def with_seed(self, seed: int) -> "Scenario":
        return dataclasses.replace(self, seed=int(seed))

    def dumps(self) -> str:
        """Canonical JSON (sorted keys, trailing newline) — byte-stable."""
        return json.dumps(self.to_obj(), indent=2, sort_keys=True) + "\n"


def loads(text: str, *, fmt: str = "json") -> Scenario:
    """Parse scenario *text* (``fmt``: ``json`` or ``toml``)."""
    if fmt == "json":
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScenarioError(f"scenario is not valid JSON: {exc}") from exc
        return Scenario.from_obj(raw)
    if fmt == "toml":
        try:
            import tomllib
        except ModuleNotFoundError as exc:  # Python 3.10: no stdlib TOML
            raise ScenarioError(
                "TOML scenarios need Python >= 3.11 (stdlib tomllib); "
                "convert to JSON or upgrade"
            ) from exc
        try:
            raw = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise ScenarioError(f"scenario is not valid TOML: {exc}") from exc
        return Scenario.from_obj(raw)
    raise ScenarioError(f"unknown scenario format {fmt!r}")


def load_scenario(path: str | Path) -> Scenario:
    """Load a scenario file; the suffix picks the format (.json / .toml)."""
    path = Path(path)
    fmt = "toml" if path.suffix.lower() == ".toml" else "json"
    return loads(path.read_text(encoding="utf-8"), fmt=fmt)
