"""Scenario-driven traffic plane: load generation against the simulated cluster.

This package turns the repo's perf story from point samples into standing
benchmarks. A *scenario file* (versioned JSON/TOML, see
:mod:`repro.workload.scenario`) declares cluster shape, object population,
tenants with admission quotas, and a traffic model; the deterministic
:class:`~repro.workload.runner.ScenarioRunner` drives a real
placement+chaos+RPC :class:`~repro.core.cluster.Cluster` on simulated time
and emits a byte-stable ``BENCH_workload_<scenario>.json`` artifact with
ops/s, latency quantiles, per-tenant admission counts and bytes moved.

Layers:

* :mod:`repro.workload.scenario` — frozen, validated scenario schema;
* :mod:`repro.workload.popularity` — uniform / zipfian / hotspot key skew;
* :mod:`repro.workload.arrival` — open-loop diurnal Poisson arrivals and
  closed-loop think-time clients on :class:`SimClock`;
* :mod:`repro.workload.admission` — per-tenant byte quotas and token-bucket
  rate limits (typed :class:`AdmissionRejectedError`);
* :mod:`repro.workload.traffic` — the seeded op-stream generator;
* :mod:`repro.workload.runner` — executes a scenario against a cluster;
* :mod:`repro.workload.report` — BENCH artifact payloads.
"""

from repro.workload.admission import AdmissionController, TenantQuota, TokenBucket
from repro.workload.arrival import closed_loop_next, open_loop_arrivals
from repro.workload.popularity import (
    POPULARITY_MODELS,
    access_sequence_for,
    hotspot_access_sequence,
    uniform_access_sequence,
    zipf_access_sequence,
)
from repro.workload.report import bench_artifact_name, write_bench_json
from repro.workload.runner import ScenarioRunner, run_scenario
from repro.workload.scenario import (
    SCHEMA_VERSION,
    Scenario,
    ScenarioError,
    load_scenario,
)
from repro.workload.traffic import WorkloadOp, generate_stream

__all__ = [
    "AdmissionController",
    "POPULARITY_MODELS",
    "SCHEMA_VERSION",
    "Scenario",
    "ScenarioError",
    "ScenarioRunner",
    "TenantQuota",
    "TokenBucket",
    "WorkloadOp",
    "access_sequence_for",
    "bench_artifact_name",
    "closed_loop_next",
    "generate_stream",
    "hotspot_access_sequence",
    "load_scenario",
    "open_loop_arrivals",
    "run_scenario",
    "uniform_access_sequence",
    "write_bench_json",
    "zipf_access_sequence",
]
