"""BENCH artifact emission: the standing perf-trajectory format.

Every scenario run collapses into one ``BENCH_workload_<scenario>.json``
file: ops/s, exact latency quantiles (overall and per op kind), per-tenant
admission accounting, bytes moved, and outcome counts. The payload is a
pure function of (scenario, seed) — values come from simulated time and
deterministic draws, serialization is canonical (sorted keys, fixed
indent, trailing newline) — so re-running a scenario must reproduce the
artifact byte for byte; CI's ``workload-smoke`` job enforces exactly that.

:func:`write_bench_json` is the shared writer: the paper benches (Fig 6/7
via ``benchmarks/conftest.py --emit-bench-json``) emit their ``BENCH_*``
artifacts through the same path.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.common.clock import NS_PER_S
from repro.common.stats import Distribution
from repro.obs.export import group_by_label

#: Version stamp inside every BENCH payload, bumped on field changes so
#: trajectory tooling can discriminate.
BENCH_SCHEMA_VERSION = 1

#: The latency quantiles every BENCH artifact reports (matches repro.obs).
BENCH_QUANTILES = (0.5, 0.95, 0.99)


def bench_artifact_name(scenario_name: str) -> str:
    return f"BENCH_workload_{scenario_name}.json"


def trace_artifact_name(scenario_name: str) -> str:
    """The Chrome trace-event artifact ``--trace`` writes next to the
    BENCH file (same byte-stability contract: deterministic sim-time
    stamps, canonical serialization)."""
    return f"TRACE_workload_{scenario_name}.json"


def dumps_bench(payload: dict) -> str:
    """Canonical BENCH serialization: sorted keys, indent 2, newline."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def write_bench_json(path: str | Path, payload: dict) -> Path:
    """Write *payload* canonically to *path*; returns the path written.

    The shared emission point for every ``BENCH_*.json`` in the repo —
    one serialization, one byte-stability contract.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(dumps_bench(payload), encoding="utf-8")
    return path


def latency_block(dist: Distribution) -> dict:
    """Quantile summary (integer ns) for one latency distribution."""
    if dist.count == 0:
        return {"count": 0}
    return {
        "count": dist.count,
        "mean_ns": int(round(dist.mean)),
        "p50_ns": int(round(dist.quantile(0.5))),
        "p95_ns": int(round(dist.quantile(0.95))),
        "p99_ns": int(round(dist.quantile(0.99))),
        "max_ns": int(round(dist.max)),
    }


def _tenant_latency_block(entry: dict | None) -> dict:
    """Integer-ns summary from one merged histogram entry (group_by_label)."""
    if not entry or not entry["count"]:
        return {"count": 0}
    return {
        "count": entry["count"],
        "mean_ns": int(round(entry["sum"] / entry["count"])),
        "p50_ns": int(round(entry["quantiles"]["0.5"])),
        "p95_ns": int(round(entry["quantiles"]["0.95"])),
        "p99_ns": int(round(entry["quantiles"]["0.99"])),
        "max_ns": int(round(entry["max"])),
    }


def build_workload_payload(result) -> dict:
    """The BENCH payload for one :class:`~repro.workload.runner.WorkloadResult`."""
    duration_s = result.duration_ns / NS_PER_S if result.duration_ns else 0.0
    executed = result.executed_ops
    # Per-tenant latency comes out of the obs plane: the runner's labeled
    # histogram families sliced by the tenant label.
    by_tenant = (
        group_by_label([result.registry], "tenant")
        if result.registry is not None
        else {}
    )
    tenants = {}
    for tenant, acct in sorted(result.admission.items()):
        rejected = acct["rejected"]
        attempted = acct["admitted"] + rejected
        tenants[tenant] = {
            "admitted": acct["admitted"],
            "rejected": rejected,
            "rejected_by_reason": acct["rejected_by_reason"],
            "rejection_rate": round(rejected / attempted, 6) if attempted else 0.0,
            "stored_bytes": acct["stored_bytes"],
            "latency_ns": _tenant_latency_block(
                by_tenant.get(tenant, {})
                .get("histograms", {})
                .get("workload_op_latency_ns")
            ),
        }
    payload = {
        "artifact": bench_artifact_name(result.scenario_name),
        "schema_version": BENCH_SCHEMA_VERSION,
        "scenario": result.scenario_name,
        "seed": result.seed,
        "sim": {
            "duration_ns": result.duration_ns,
            "ops_generated": result.generated_ops,
            "ops_executed": executed,
            "ops_per_s": round(executed / duration_s, 3) if duration_s else 0.0,
        },
        "latency_ns": {
            "overall": latency_block(result.latency_overall),
            "by_kind": {
                kind: latency_block(dist)
                for kind, dist in sorted(result.latency_by_kind.items())
            },
        },
        "tenants": tenants,
        "bytes": {
            "written": result.bytes_written,
            "read": result.bytes_read,
            "deleted": result.bytes_deleted,
        },
        "outcomes": dict(sorted(result.outcomes.items())),
    }
    if getattr(result, "overload_enabled", False):
        payload["overload"] = overload_block(result, duration_s)
    if getattr(result, "tracing_enabled", False):
        payload["latency_attribution"] = attribution_block(result)
    if getattr(result, "tiering_enabled", False):
        payload["tiering"] = result.tiering
    if getattr(result, "rpc_enabled", False):
        payload["rpc"] = rpc_block(result)
    return payload


def _attribution_table(table: dict) -> dict:
    out = {}
    for key, slot in sorted(table.items()):
        observed = int(round(slot["observed_ns"]))
        components = {
            name: int(round(value))
            for name, value in sorted(slot["components_ns"].items())
        }
        out[key] = {
            "ops": slot["ops"],
            "observed_ns": observed,
            "components_ns": components,
        }
    return out


def attribution_block(result) -> dict:
    """The ``latency_attribution`` section of a BENCH payload: every
    measured op's observed latency decomposed into critical-path
    components (queue wait, server service time, fabric transfers, retry
    amplification, hedged waits, client residual), summed per op kind and
    per tenant. ``exact`` asserts the per-op invariant held for the whole
    run: components summed to observed latency to the nanosecond. Only
    present when the scenario ran with tracing — legacy artifacts stay
    byte-identical."""
    return {
        "exact": bool(result.attribution_exact),
        "by_kind": _attribution_table(result.attribution_by_kind),
        "by_tenant": _attribution_table(result.attribution_by_tenant),
        "sampling": dict(result.sampling),
    }


def rpc_block(result) -> dict:
    """The ``rpc`` section of a BENCH payload: effective RPC mode, the
    merged per-channel pipelining/batching/hedging counters, and — in
    async mode — the task-plane latency attribution (per-kind and
    per-tenant components including ``pipeline``, with the ns-exact sum
    invariant). Only present when the scenario has an ``rpc`` block —
    legacy artifacts stay byte-identical."""
    out = {
        "mode": result.rpc_mode,
        "counters": dict(sorted(result.rpc_counters.items())),
    }
    if result.rpc_mode == "async":
        out["attribution"] = {
            "exact": bool(result.attribution_exact),
            "by_kind": _attribution_table(result.attribution_by_kind),
            "by_tenant": _attribution_table(result.attribution_by_tenant),
        }
    return out


def overload_block(result, duration_s: float) -> dict:
    """The ``overload`` section of a BENCH payload: goodput (in-deadline
    "ok" ops/s), shed rate, queue-depth quantiles, and the merged
    server/client overload counters. Only present when the scenario ran
    with an ``overload`` block — legacy artifacts stay byte-identical."""
    server = dict(sorted(result.overload_server.items()))
    shed = server.get("shed_queue_full", 0) + server.get("shed_expired", 0)
    arrivals = server.get("admitted", 0) + shed
    queue = result.overload_queue
    if queue.count:
        queue_block = {
            "count": queue.count,
            "p50": int(round(queue.quantile(0.5))),
            "p99": int(round(queue.quantile(0.99))),
            "max": int(round(queue.max)),
        }
    else:
        queue_block = {"count": 0}
    return {
        "op_deadline_ms": result.op_deadline_ns / 1e6,
        "in_deadline_ops": result.in_deadline_ops,
        "goodput_ops_per_s": (
            round(result.in_deadline_ops / duration_s, 3) if duration_s else 0.0
        ),
        "shed_rate": round(shed / arrivals, 6) if arrivals else 0.0,
        "queue_depth": queue_block,
        "server": server,
        "client": dict(sorted(result.overload_client.items())),
    }
