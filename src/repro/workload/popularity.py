"""Key-popularity models: which object a request touches.

Real big-data object stores see heavily skewed access — a few hot
partitions and a long cold tail — so the traffic plane ships three
popularity families:

* **uniform** — every key equally likely (the contrast case);
* **zipfian** — P(rank k) ∝ 1/k^s, the canonical skew model;
* **hotspot** — a small *hot fraction* of the key space absorbs a fixed
  *hot weight* of the traffic, uniform within each class (the shape tiered
  caching and multi-tenant isolation studies care about).

Every generator is a pure function of a :class:`DeterministicRng` stream,
so the same scenario + seed always yields the same access sequence.
``zipf_access_sequence`` and ``uniform_access_sequence`` moved here from
``repro.bench.workload`` (which keeps thin re-exports); draws are
bit-identical to the pre-move implementation for the same RNG state.
"""

from __future__ import annotations

import numpy as np

from repro.common.rng import DeterministicRng


def _unit_draws(rng: DeterministicRng, n: int) -> np.ndarray:
    """``n`` uniform floats in [0, 1) from the deterministic byte stream."""
    return np.frombuffer(rng.bytes(n * 8), dtype=np.uint64).astype(
        np.float64
    ) / float(2**64)


def zipf_access_sequence(
    rng: DeterministicRng, n_objects: int, n_accesses: int, s: float = 1.1
) -> np.ndarray:
    """Popularity-skewed object indices: P(rank k) ∝ 1/k^s.

    Returns ``n_accesses`` indices in ``[0, n_objects)``.
    """
    if n_objects <= 0 or n_accesses <= 0:
        raise ValueError("need positive object and access counts")
    if s <= 0:
        raise ValueError("zipf exponent must be positive")
    ranks = np.arange(1, n_objects + 1, dtype=np.float64)
    weights = ranks ** (-s)
    weights /= weights.sum()
    cumulative = np.cumsum(weights)
    draws = _unit_draws(rng, n_accesses)
    return np.searchsorted(cumulative, draws, side="right").astype(np.int64)


def uniform_access_sequence(
    rng: DeterministicRng, n_objects: int, n_accesses: int
) -> np.ndarray:
    """Uniform access indices (the contrast case for skew studies)."""
    if n_objects <= 0 or n_accesses <= 0:
        raise ValueError("need positive object and access counts")
    draws = np.frombuffer(rng.bytes(n_accesses * 8), dtype=np.uint64)
    return (draws % n_objects).astype(np.int64)


def hotspot_access_sequence(
    rng: DeterministicRng,
    n_objects: int,
    n_accesses: int,
    hot_fraction: float = 0.1,
    hot_weight: float = 0.9,
) -> np.ndarray:
    """Two-class skew: ``hot_weight`` of accesses land uniformly on the
    first ``ceil(hot_fraction * n_objects)`` keys, the rest uniformly on
    the cold tail. With one object, everything is hot by construction.
    """
    if n_objects <= 0 or n_accesses <= 0:
        raise ValueError("need positive object and access counts")
    if not 0.0 < hot_fraction <= 1.0:
        raise ValueError("hot_fraction must be in (0, 1]")
    if not 0.0 <= hot_weight <= 1.0:
        raise ValueError("hot_weight must be in [0, 1]")
    n_hot = max(1, int(np.ceil(hot_fraction * n_objects)))
    if n_hot >= n_objects:
        return uniform_access_sequence(rng, n_objects, n_accesses)
    # Two draws per access (class pick, then index within class) keeps the
    # sequence a pure function of the stream regardless of class sizes.
    class_draws = _unit_draws(rng, n_accesses)
    index_draws = _unit_draws(rng, n_accesses)
    hot = class_draws < hot_weight
    n_cold = n_objects - n_hot
    indices = np.where(
        hot,
        (index_draws * n_hot).astype(np.int64),
        n_hot + (index_draws * n_cold).astype(np.int64),
    )
    return np.minimum(indices, n_objects - 1).astype(np.int64)


#: Popularity model names the scenario schema accepts.
POPULARITY_MODELS = ("uniform", "zipfian", "hotspot")


def access_sequence_for(
    model: str,
    rng: DeterministicRng,
    n_objects: int,
    n_accesses: int,
    *,
    s: float = 1.1,
    hot_fraction: float = 0.1,
    hot_weight: float = 0.9,
) -> np.ndarray:
    """Dispatch on a scenario's popularity model name."""
    if model == "uniform":
        return uniform_access_sequence(rng, n_objects, n_accesses)
    if model == "zipfian":
        return zipf_access_sequence(rng, n_objects, n_accesses, s=s)
    if model == "hotspot":
        return hotspot_access_sequence(
            rng,
            n_objects,
            n_accesses,
            hot_fraction=hot_fraction,
            hot_weight=hot_weight,
        )
    raise ValueError(
        f"unknown popularity model {model!r}; have {POPULARITY_MODELS}"
    )
