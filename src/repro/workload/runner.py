"""Deterministic scenario execution against a real cluster.

:class:`ScenarioRunner` stands up a placement+chaos+RPC
:class:`~repro.core.cluster.Cluster` shaped by the scenario (node count,
per-node ring weights, link-profile factors, store capacity), preloads the
object population with tenant ownership, then drives the generated op
stream on simulated time:

* **open loop** — the clock is advanced to each op's arrival timestamp
  (offset by preload end); per-op latency is completion minus arrival, so
  queueing delay when the cluster falls behind is *in* the number;
* **closed loop** — N logical clients pull ops from the stream as they
  become ready (completion + think time), scheduled earliest-ready-first.

Every op passes multi-tenant admission first; rejected ops consume no
cluster work and are tallied per tenant/reason. Writes replace the slot's
current object (delete old version, put new), deletes empty the slot, and
scans batch-read consecutive slots. Latencies and outcomes land both in a
``workload`` :class:`~repro.obs.metrics.MetricsRegistry` (labeled by
tenant and kind) and in plain distributions the BENCH payload is built
from. Everything observable is a pure function of (scenario, seed).
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field, replace

from repro.common.config import ClusterConfig, OverloadConfig, TierConfig
from repro.common.errors import AdmissionRejectedError, ReproError
from repro.common.ids import ObjectID
from repro.common.rng import DeterministicRng
from repro.common.stats import Distribution
from repro.common.units import MiB
from repro.core.cluster import Cluster
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import BASE_COMPONENTS, LEGACY_COMPONENTS, SpanConfig
from repro.rpc.aio.loop import Sleep, TaskAttribution
from repro.workload.admission import AdmissionController, TenantQuota
from repro.workload.arrival import closed_loop_next
from repro.workload.report import build_workload_payload
from repro.workload.scenario import Scenario
from repro.workload.traffic import WorkloadOp, _weighted_names, generate_stream


def payload_for(slot: int, version: int, size: int) -> bytes:
    """Deterministic payload for one slot version (contents don't affect
    modelled timing; a recognizable fill makes corruption visible)."""
    return bytes([(slot * 131 + version * 17) % 251]) * size


@dataclass
class _Slot:
    """Current object behind one key slot."""

    oid_int: int
    size: int
    tenant: str


@dataclass
class WorkloadResult:
    """Everything a scenario run measured (feed to build_workload_payload)."""

    scenario_name: str
    seed: int
    generated_ops: int
    executed_ops: int = 0
    duration_ns: int = 0
    latency_overall: Distribution = field(default_factory=Distribution)
    latency_by_kind: dict[str, Distribution] = field(default_factory=dict)
    outcomes: dict[str, int] = field(default_factory=dict)
    bytes_written: int = 0
    bytes_read: int = 0
    bytes_deleted: int = 0
    admission: dict = field(default_factory=dict)
    registry: MetricsRegistry | None = None
    # Overload-control measurements (populated only when the scenario has
    # an ``overload`` block): goodput = "ok" ops whose latency fit the op
    # deadline, queue depth sampled per admitted request, and the merged
    # server/client shed-and-retry counters.
    overload_enabled: bool = False
    op_deadline_ns: float = 0.0
    in_deadline_ops: int = 0
    overload_queue: Distribution = field(default_factory=Distribution)
    overload_server: dict[str, int] = field(default_factory=dict)
    overload_client: dict[str, int] = field(default_factory=dict)
    # Span-tracing measurements (populated only when the scenario has an
    # enabled ``tracing`` block): per-kind and per-tenant critical-path
    # latency attribution — every measured op's observed latency decomposed
    # ns-exact into queue/service/fabric/retry/hedge/client — plus the
    # sink's sampling stats and the sink itself (for trace export).
    tracing_enabled: bool = False
    attribution_by_kind: dict[str, dict] = field(default_factory=dict)
    attribution_by_tenant: dict[str, dict] = field(default_factory=dict)
    attribution_exact: bool = True
    sampling: dict = field(default_factory=dict)
    spans: object | None = None
    # Tiering measurements (populated only when the scenario has a
    # ``tiering`` block): merged per-node hot-object cache stats, tier
    # engine counters, and the fabric bytes the cache kept off the wire.
    tiering_enabled: bool = False
    tiering: dict = field(default_factory=dict)
    # Async-RPC measurements (populated only when the scenario has an
    # ``rpc`` block): effective mode and the merged per-channel pipelining
    # counters (batches sent, ids coalesced, hedges fired, in-flight peak).
    # In async mode the per-op attribution tables above are filled from
    # task-local :class:`TaskAttribution` instead of the span plane.
    rpc_enabled: bool = False
    rpc_mode: str = "sync"
    rpc_counters: dict[str, int] = field(default_factory=dict)


def _config_for(scenario: Scenario, seed: int) -> ClusterConfig:
    shape = scenario.cluster
    link = shape.link
    config = ClusterConfig(seed=seed).with_store(
        capacity_bytes=shape.capacity_mib * MiB
    )
    fabric = replace(
        config.fabric,
        read_bandwidth_bps=config.fabric.read_bandwidth_bps
        * link.fabric_bandwidth_factor,
        write_bandwidth_bps=config.fabric.write_bandwidth_bps
        * link.fabric_bandwidth_factor,
        added_latency_ns=config.fabric.added_latency_ns
        * link.fabric_latency_factor,
        streaming_overhead_ns=config.fabric.streaming_overhead_ns
        * link.fabric_latency_factor,
    )
    rpc = replace(
        config.rpc,
        round_trip_ns=config.rpc.round_trip_ns * link.rpc_round_trip_factor,
    )
    overload = config.overload
    spec = scenario.overload
    if spec is not None:
        overload = OverloadConfig(
            service_rate_ops_per_s=spec.service_rate_ops_per_s,
            queue_depth=spec.queue_depth,
            queue_discipline=spec.queue_discipline,
            shed_expired=spec.shed_expired,
        )
        rpc = replace(
            rpc,
            default_deadline_ns=spec.op_deadline_ms * 1e6,
            retry_budget_per_s=spec.retry_budget_per_s,
            retry_budget_burst=spec.retry_budget_burst,
            hedge_quantile=spec.hedge_quantile,
            hedge_min_samples=spec.hedge_min_samples,
        )
    rspec = scenario.rpc
    if rspec is not None:
        rpc = replace(
            rpc,
            mode=rspec.mode,
            batch_window_ns=rspec.batch_window_ns,
            max_batch=rspec.max_batch,
            hedge_stagger_ns=rspec.hedge_stagger_ns,
        )
    tier = config.tier
    tspec = scenario.tiering
    if tspec is not None:
        # tick_interval_ns stays 0: engine ticks ride the op stream (every
        # ``tick_every_ops`` executed ops), so the only clock advances are
        # the migrations' own modelled transfer costs.
        tier = TierConfig(
            cache_capacity_bytes=tspec.cache_capacity_mib * MiB,
            sketch_width=tspec.sketch_width,
            sketch_depth=tspec.sketch_depth,
            heat_half_life_ns=tspec.heat_half_life_ms * 1e6,
            heat_sample_rate=tspec.heat_sample_rate,
            promote_min_heat=tspec.promote_min_heat,
            demote_watermark=tspec.demote_watermark,
            demote_target=tspec.demote_target,
            bytes_per_tick=tspec.bytes_per_tick_mib * MiB,
            tick_interval_ns=0.0,
        )
    return replace(config, fabric=fabric, rpc=rpc, overload=overload, tier=tier)


class ScenarioRunner:
    """Execute one scenario deterministically and collect measurements."""

    def __init__(self, scenario: Scenario, seed: int | None = None):
        self.scenario = scenario
        self.seed = scenario.seed if seed is None else int(seed)
        self.registry = MetricsRegistry(node="workload")
        self._burst_model = None
        self._shed_expired_ingress = False
        self._rpc_async = (
            scenario.rpc is not None and scenario.rpc.mode == "async"
        )
        self.admission = AdmissionController()
        self.admission.attach_metrics(self.registry)
        for tenant in scenario.tenants:
            q = tenant.quota
            self.admission.set_quota(
                tenant.name,
                TenantQuota(
                    max_stored_bytes=q.max_stored_bytes,
                    ops_per_s=q.ops_per_s,
                    burst_ops=q.burst_ops,
                    write_bytes_per_s=q.write_bytes_per_s,
                    burst_bytes=q.burst_bytes,
                ),
            )
        self._m_ops = self.registry.counter(
            "workload_ops_total",
            "Workload operations by tenant, kind and outcome",
            labels=("tenant", "kind", "outcome"),
        )
        self._m_latency = self.registry.histogram(
            "workload_op_latency_ns",
            "Per-op latency (arrival to completion, simulated ns)",
            labels=("tenant", "kind"),
        )
        self._m_bytes = self.registry.counter(
            "workload_bytes_total",
            "Payload bytes moved by tenant and direction",
            labels=("tenant", "direction"),
        )
        self.cluster: Cluster | None = None
        self._spans = None
        self._slots: dict[int, _Slot] = {}
        self._next_oid = 0
        self._clients: list = []
        self._tier_engine = None
        self._tier_tick_every = 0
        self._ops_since_tier_tick = 0
        # slot -> (reads, cache hits); armed only when tiering is on.
        self._read_stats: dict[int, tuple[int, int]] | None = None
        self.result = WorkloadResult(
            scenario_name=scenario.name,
            seed=self.seed,
            generated_ops=scenario.traffic.ops,
            registry=self.registry,
        )

    # ------------------------------------------------------------------ setup

    def _build_cluster(self) -> Cluster:
        shape = self.scenario.cluster
        weights = shape.node_weights()
        heterogeneous = any(w != 1.0 for w in weights.values())
        tracing = None
        spec = self.scenario.tracing
        if spec is not None and spec.enabled and not self._rpc_async:
            # The span sink attributes clock advances through a single
            # open-root stack — sound only while one op is on the clock at
            # a time. Under the event loop attribution is carried per task
            # (TaskAttribution), so the sink stays detached in async mode.
            tracing = SpanConfig(
                sample_rate=spec.sample_rate,
                tail_percentile=spec.tail_percentile,
                flight_capacity=spec.flight_capacity,
            )
        return Cluster(
            _config_for(self.scenario, self.seed),
            node_names=list(weights),
            sharing="rpc",
            enable_lookup_cache=True,
            check_remote_uniqueness=False,
            placement=shape.placement,
            node_weights=weights if (shape.placement and heterogeneous) else None,
            tracing=tracing,
            tiering=self.scenario.tiering is not None,
        )

    def _fresh_oid(self) -> ObjectID:
        self._next_oid += 1
        return ObjectID.from_int(self._next_oid)

    def _client(self, index: int):
        return self._clients[index % len(self._clients)]

    def _preload(self) -> None:
        """Create the initial population with tenant ownership by weight."""
        scenario = self.scenario
        rng = DeterministicRng(self.seed)
        owners = _weighted_names(
            rng.spawn("owners"),
            [(t.name, float(t.weight)) for t in scenario.tenants],
            scenario.population.objects,
        )
        size_rng = rng.spawn("preload-sizes")
        replicas = scenario.cluster.replicas
        for slot in range(scenario.population.objects):
            size = scenario.population.size.draw(size_rng)
            oid = self._fresh_oid()
            self._client(slot).put_bytes(
                oid, payload_for(slot, self._next_oid, size), replicas=replicas
            )
            tenant = owners[slot]
            self._slots[slot] = _Slot(self._next_oid, size, tenant)
            self.admission.record_stored(tenant, size)

    # ------------------------------------------------------------------ ops

    def _find_holder(self, oid: ObjectID) -> str | None:
        """Node holding the live sealed primary extent, if any."""
        for name in self.cluster.node_names():
            store = self.cluster.store(name)
            if oid in store.deferred_retires() or store.is_replica(oid):
                continue
            with store.table.lock:
                entry = store.table.lookup(oid)
                if entry is not None and entry.is_sealed and not entry.quarantined:
                    return name
        return None

    def _delete_slot(self, slot: int) -> bool:
        state = self._slots.pop(slot, None)
        if state is None:
            return False
        oid = ObjectID.from_int(state.oid_int)
        holder = self._find_holder(oid)
        if holder is not None:
            self.cluster.store(holder).delete_object(oid)
        self.admission.record_stored(state.tenant, -state.size)
        self.result.bytes_deleted += state.size
        return True

    def _do_read(self, op: WorkloadOp) -> str:
        state = self._slots.get(op.slot)
        if state is None:
            return "miss"
        client = self._client(op.seq)
        oid = ObjectID.from_int(state.oid_int)
        # Per-slot hit attribution for the BENCH hot-set breakdown: the
        # issuing node's cache stamps last_served on every serve, so
        # clearing it before the get tells us whether *this* read hit.
        cache = None
        if self._read_stats is not None:
            agent = client.store.tier_agent
            cache = agent.cache if agent is not None else None
            if cache is not None:
                cache.last_served = None
        buffers = client.get([oid], allow_missing=True)
        if buffers[0] is None:
            return "miss"
        try:
            data = buffers[0].read_all()
        finally:
            client.release(oid)
        if self._read_stats is not None:
            # Only remote reads are cache-eligible: a home-local get never
            # consults the cache and would dilute the hit rate it reports.
            remote = buffers[0].is_remote
            hit = (
                cache is not None
                and cache.last_served is not None
                and cache.last_served[0] == oid
            )
            reads, remotes, hits = self._read_stats.get(op.slot, (0, 0, 0))
            self._read_stats[op.slot] = (
                reads + 1,
                remotes + int(remote),
                hits + int(hit),
            )
        self.result.bytes_read += len(data)
        self._m_bytes.labels(tenant=op.tenant, direction="read").inc(len(data))
        return "ok"

    def _do_write(self, op: WorkloadOp) -> str:
        self._delete_slot(op.slot)
        oid = self._fresh_oid()
        self._client(op.seq).put_bytes(
            oid,
            payload_for(op.slot, self._next_oid, op.size_bytes),
            replicas=self.scenario.cluster.replicas,
        )
        self._slots[op.slot] = _Slot(self._next_oid, op.size_bytes, op.tenant)
        self.admission.record_stored(op.tenant, op.size_bytes)
        self.result.bytes_written += op.size_bytes
        self._m_bytes.labels(tenant=op.tenant, direction="write").inc(
            op.size_bytes
        )
        return "ok"

    def _do_delete(self, op: WorkloadOp) -> str:
        return "ok" if self._delete_slot(op.slot) else "miss"

    def _do_scan(self, op: WorkloadOp) -> str:
        n_slots = self.scenario.population.objects
        oids = []
        for offset in range(self.scenario.traffic.scan_length):
            state = self._slots.get((op.slot + offset) % n_slots)
            if state is not None:
                oids.append(ObjectID.from_int(state.oid_int))
        if not oids:
            return "empty"
        client = self._client(op.seq)
        buffers = client.get(oids, allow_missing=True)
        read = 0
        for oid, buffer in zip(oids, buffers):
            if buffer is None:
                continue
            try:
                read += len(buffer.read_all())
            finally:
                client.release(oid)
        self.result.bytes_read += read
        self._m_bytes.labels(tenant=op.tenant, direction="read").inc(read)
        return "ok"

    # ------------------------------------------------------------------ async ops
    #
    # The event-loop twins of the _do_* bodies above: each op runs as one
    # task, yielding its transport waits to the loop so many ops overlap in
    # simulated time. Resolution goes through the client task plane —
    # multi_get/get/put/delete tasks with coalesced per-peer lookups — and
    # latency attribution rides per task (queue → client → service →
    # fabric settle points, pipeline/retry/hedge waits hinted by children).

    def _delete_slot_task(self, slot: int, attr):
        state = self._slots.pop(slot, None)
        if state is None:
            return False
        oid = ObjectID.from_int(state.oid_int)
        holder = self._find_holder(oid)
        if holder is not None:
            yield from self.cluster.store(holder).delete_object_task(oid, attr)
        self.admission.record_stored(state.tenant, -state.size)
        self.result.bytes_deleted += state.size
        return True

    def _do_read_task(self, op: WorkloadOp, attr):
        state = self._slots.get(op.slot)
        if state is None:
            return "miss"
        client = self._client(op.seq)
        oid = ObjectID.from_int(state.oid_int)
        cache = None
        if self._read_stats is not None:
            agent = client.store.tier_agent
            cache = agent.cache if agent is not None else None
            if cache is not None:
                cache.last_served = None
        buffers = yield from client.get_task([oid], allow_missing=True,
                                             attr=attr)
        attr.settle("service")
        if buffers[0] is None:
            return "miss"
        try:
            data = buffers[0].read_all()
        finally:
            client.release(oid)
        attr.settle("fabric")
        if self._read_stats is not None:
            remote = buffers[0].is_remote
            hit = (
                cache is not None
                and cache.last_served is not None
                and cache.last_served[0] == oid
            )
            reads, remotes, hits = self._read_stats.get(op.slot, (0, 0, 0))
            self._read_stats[op.slot] = (
                reads + 1,
                remotes + int(remote),
                hits + int(hit),
            )
        self.result.bytes_read += len(data)
        self._m_bytes.labels(tenant=op.tenant, direction="read").inc(len(data))
        return "ok"

    def _do_write_task(self, op: WorkloadOp, attr):
        yield from self._delete_slot_task(op.slot, attr)
        oid = self._fresh_oid()
        # Concurrent writes keep allocating ids while this task is
        # suspended, so pin this object's id now rather than re-reading
        # the allocator after the put completes.
        oid_int = self._next_oid
        yield from self._client(op.seq).put_bytes_task(
            oid,
            payload_for(op.slot, oid_int, op.size_bytes),
            replicas=self.scenario.cluster.replicas,
            attr=attr,
        )
        attr.settle("service")
        self._slots[op.slot] = _Slot(oid_int, op.size_bytes, op.tenant)
        self.admission.record_stored(op.tenant, op.size_bytes)
        self.result.bytes_written += op.size_bytes
        self._m_bytes.labels(tenant=op.tenant, direction="write").inc(
            op.size_bytes
        )
        return "ok"

    def _do_delete_task(self, op: WorkloadOp, attr):
        deleted = yield from self._delete_slot_task(op.slot, attr)
        attr.settle("service")
        return "ok" if deleted else "miss"

    def _do_scan_task(self, op: WorkloadOp, attr):
        n_slots = self.scenario.population.objects
        oids = []
        for offset in range(self.scenario.traffic.scan_length):
            state = self._slots.get((op.slot + offset) % n_slots)
            if state is not None:
                oids.append(ObjectID.from_int(state.oid_int))
        if not oids:
            return "empty"
        client = self._client(op.seq)
        # The whole scan is one batched multi-get: a single coalesced
        # Lookup per peer instead of scan_length unary calls.
        payloads = yield from client.multi_get_task(
            oids, allow_missing=True, attr=attr
        )
        read = sum(len(p) for p in payloads if p is not None)
        self.result.bytes_read += read
        self._m_bytes.labels(tenant=op.tenant, direction="read").inc(read)
        return "ok"

    def _op_task(self, op: WorkloadOp, issue_ns: int):
        """One op as an event-loop task — the async twin of
        ``_execute``/``_execute_inner``, identical bookkeeping."""
        clock = self.cluster.clock
        result = self.result
        self._maybe_burst()
        if (
            self._shed_expired_ingress
            and clock.now_ns - issue_ns >= result.op_deadline_ns
        ):
            result.executed_ops += 1
            result.outcomes["shed:expired"] = (
                result.outcomes.get("shed:expired", 0) + 1
            )
            result.overload_client["ingress_shed"] = (
                result.overload_client.get("ingress_shed", 0) + 1
            )
            self._m_ops.labels(
                tenant=op.tenant, kind=op.kind, outcome="shed:expired"
            ).inc()
            return
        try:
            self.admission.admit(
                op.tenant, op.kind, op.size_bytes, clock.now_ns
            )
        except AdmissionRejectedError as exc:
            outcome = f"rejected:{exc.reason}"
            self._m_ops.labels(
                tenant=op.tenant, kind=op.kind, outcome=outcome
            ).inc()
            result.outcomes[outcome] = result.outcomes.get(outcome, 0) + 1
            return
        attr = TaskAttribution(clock, issue_ns)
        # Between the op's scheduled arrival and the task actually starting
        # the loop may have been busy with other ops: that is queueing.
        attr.settle("queue")
        try:
            outcome = yield from getattr(self, f"_do_{op.kind}_task")(op, attr)
        except ReproError as exc:
            outcome = f"error:{type(exc).__name__}"
        attr.settle("client")
        latency = clock.now_ns - issue_ns
        result.executed_ops += 1
        if outcome == "ok" and (
            result.op_deadline_ns <= 0 or latency <= result.op_deadline_ns
        ):
            result.in_deadline_ops += 1
        result.outcomes[outcome] = result.outcomes.get(outcome, 0) + 1
        result.latency_overall.add(latency)
        result.latency_by_kind.setdefault(op.kind, Distribution()).add(latency)
        self._m_ops.labels(tenant=op.tenant, kind=op.kind, outcome=outcome).inc()
        self._m_latency.labels(tenant=op.tenant, kind=op.kind).observe(latency)
        if attr.total_ns() != latency:
            result.attribution_exact = False
        self._accumulate_attribution(op, latency, attr.components)
        self._maybe_tier_tick()

    # ------------------------------------------------------------------ run

    def _maybe_burst(self) -> None:
        """Inject every periodic stall that has come due on the burst node
        (``burst_backlog_ms`` of queued work each ``burst_period_s``)."""
        if self._burst_model is None:
            return
        while self.cluster.clock.now_ns >= self._next_burst_ns:
            self._burst_model.add_backlog(self._burst_backlog_ns)
            self._next_burst_ns += self._burst_period_ns

    def _execute(self, op: WorkloadOp, issue_ns: int) -> None:
        spans = self._spans
        if spans is None:
            self._execute_inner(op, issue_ns)
            return
        clock = self.cluster.clock
        # The op's deadline (and observed latency) is anchored at its
        # scheduled arrival; by the time _execute runs, the clock may be
        # past it — that pre-dispatch backlog wait is queueing delay.
        wait = clock.now_ns - issue_ns
        with spans.span(
            "op", op.kind, node="workload", tenant=op.tenant, slot=op.slot
        ) as sp:
            latency = self._execute_inner(op, issue_ns)
        if latency is None:
            return  # shed at ingress or rejected: no latency was measured
        if wait > 0:
            # Fold the backlog wait into the root's components post-close:
            # the kept trace holds the same dict, so the export agrees.
            sp.add_component("queue", wait)
        components = sp.components
        if sum(components.values()) != latency:
            self.result.attribution_exact = False
        self._accumulate_attribution(op, latency, components)

    def _accumulate_attribution(
        self, op: WorkloadOp, observed, components: dict
    ) -> None:
        result = self.result
        # Without a tiering block the "cache" component cannot acquire time
        # (no tier agent exists), so the report keeps emitting exactly the
        # legacy buckets — pre-tiering artifacts stay byte-identical. The
        # "pipeline" bucket likewise only appears once async mode charges it.
        known = (
            BASE_COMPONENTS
            if self.scenario.tiering is not None
            else LEGACY_COMPONENTS
        )
        for key, table in (
            (op.kind, result.attribution_by_kind),
            (op.tenant, result.attribution_by_tenant),
        ):
            slot = table.get(key)
            if slot is None:
                slot = table[key] = {
                    "ops": 0,
                    "observed_ns": 0,
                    "components_ns": {c: 0 for c in known},
                }
            slot["ops"] += 1
            slot["observed_ns"] += observed
            bucket = slot["components_ns"]
            for component, value in components.items():
                if component in bucket or value:
                    bucket[component] = bucket.get(component, 0) + value

    def _execute_inner(self, op: WorkloadOp, issue_ns: int):
        """Run one op; returns the measured latency (ns), or ``None`` when
        the op was shed/rejected before reaching the cluster."""
        clock = self.cluster.clock
        result = self.result
        self._maybe_burst()
        if (
            self._shed_expired_ingress
            and clock.now_ns - issue_ns >= result.op_deadline_ns
        ):
            # The op's deadline is anchored at its *scheduled* arrival, and
            # it expired while the op sat in the dispatch backlog. Serving
            # it now would burn cluster time nobody is waiting for — shed
            # at the ingress, the client-side twin of the server's
            # expired-work shedding. This is what lets goodput survive
            # past the knee: stale work exits for free, fresh work runs.
            result.executed_ops += 1
            result.outcomes["shed:expired"] = (
                result.outcomes.get("shed:expired", 0) + 1
            )
            result.overload_client["ingress_shed"] = (
                result.overload_client.get("ingress_shed", 0) + 1
            )
            self._m_ops.labels(
                tenant=op.tenant, kind=op.kind, outcome="shed:expired"
            ).inc()
            return None
        try:
            self.admission.admit(
                op.tenant, op.kind, op.size_bytes, clock.now_ns
            )
        except AdmissionRejectedError as exc:
            outcome = f"rejected:{exc.reason}"
            self._m_ops.labels(
                tenant=op.tenant, kind=op.kind, outcome=outcome
            ).inc()
            result.outcomes[outcome] = result.outcomes.get(outcome, 0) + 1
            return None
        try:
            outcome = getattr(self, f"_do_{op.kind}")(op)
        except ReproError as exc:
            outcome = f"error:{type(exc).__name__}"
        latency = clock.now_ns - issue_ns
        result.executed_ops += 1
        if outcome == "ok" and (
            result.op_deadline_ns <= 0 or latency <= result.op_deadline_ns
        ):
            result.in_deadline_ops += 1
        result.outcomes[outcome] = result.outcomes.get(outcome, 0) + 1
        result.latency_overall.add(latency)
        result.latency_by_kind.setdefault(op.kind, Distribution()).add(latency)
        self._m_ops.labels(tenant=op.tenant, kind=op.kind, outcome=outcome).inc()
        self._m_latency.labels(tenant=op.tenant, kind=op.kind).observe(latency)
        return latency

    def _maybe_tier_tick(self) -> None:
        """Run one tier-engine tick every ``tick_every_ops`` driven ops —
        the traffic-plane stand-in for a background tiering thread."""
        if self._tier_engine is None:
            return
        self._ops_since_tier_tick += 1
        if self._ops_since_tier_tick >= self._tier_tick_every:
            self._ops_since_tier_tick = 0
            self._tier_engine.tick()

    def _collect_tiering(self) -> dict:
        """Merge per-node cache stats, engine counters and fabric savings
        into the result's ``tiering`` block (node order → deterministic)."""
        keys = (
            "hits", "misses", "admissions", "rejections", "evictions",
            "invalidations", "bytes_avoided", "entries", "used_bytes",
            "capacity_bytes",
        )
        totals = {key: 0 for key in keys}
        per_node: dict[str, dict] = {}
        for name in self.cluster.node_names():
            agent = self.cluster.tier_agent(name)
            if agent is None:
                continue
            cache = agent.stats().get("cache")
            if cache is None:
                continue
            per_node[name] = cache
            for key in keys:
                totals[key] += int(cache.get(key, 0))
        lookups = totals["hits"] + totals["misses"]
        out: dict = {
            "cache": {
                **totals,
                "hit_rate": totals["hits"] / lookups if lookups else 0.0,
            },
            "per_node": per_node,
        }
        if self._tier_engine is not None:
            out["engine"] = dict(
                sorted(self._tier_engine.counters.snapshot().items())
            )
        read_bytes = avoided = 0
        for link in self.cluster.fabric.links():
            snap = link.counters.snapshot()
            read_bytes += snap.get("read_bytes", 0)
            avoided += snap.get("read_bytes_avoided", 0)
        out["fabric"] = {
            "read_bytes": read_bytes,
            "read_bytes_avoided": avoided,
        }
        if self._read_stats:
            # The hot set: the most-read tenth of the slots that saw any
            # reads (at least one slot), ranked by observed read count —
            # the zipfian head the cache exists to serve. Hit rate is over
            # *remote* reads only; a home-local get never consults the
            # cache. (slot, count) ordering keeps ties deterministic.
            ranked = sorted(
                self._read_stats.items(),
                key=lambda item: (-item[1][0], item[0]),
            )
            top = max(1, len(ranked) // 10)
            hot = [stats for _, stats in ranked[:top]]
            hot_reads = sum(reads for reads, _, _ in hot)
            hot_remote = sum(remotes for _, remotes, _ in hot)
            hot_hits = sum(hits for _, _, hits in hot)
            all_reads = sum(reads for _, (reads, _, _) in ranked)
            all_remote = sum(remotes for _, (_, remotes, _) in ranked)
            all_hits = sum(hits for _, (_, _, hits) in ranked)
            out["hot_set"] = {
                "slots": top,
                "reads": hot_reads,
                "remote_reads": hot_remote,
                "hits": hot_hits,
                "hit_rate": hot_hits / hot_remote if hot_remote else 0.0,
                "read_share": hot_reads / all_reads if all_reads else 0.0,
                "all_remote_hit_rate": (
                    all_hits / all_remote if all_remote else 0.0
                ),
            }
        return out

    def _collect_overload(self) -> None:
        """Merge per-server admission stats and per-channel retry/hedge
        counters into the result (node order → deterministic)."""
        result = self.result
        for name in self.cluster.node_names():
            node = self.cluster.node(name)
            model = node.server.overload
            if model is not None:
                result.overload_queue.extend(model.queue_samples.samples)
                for key, value in sorted(model.counters.snapshot().items()):
                    result.overload_server[key] = (
                        result.overload_server.get(key, 0) + value
                    )
            for _, channel in sorted(node.channels.items()):
                counters = getattr(channel, "counters", None)
                if counters is None:
                    continue
                for key in (
                    "attempts_shed",
                    "retries",
                    "retries_suppressed",
                ):
                    value = counters.snapshot().get(key, 0)
                    if value:
                        result.overload_client[key] = (
                            result.overload_client.get(key, 0) + value
                        )

    def run(self) -> WorkloadResult:
        scenario = self.scenario
        if scenario.overload is not None:
            self.result.overload_enabled = True
            self.result.op_deadline_ns = scenario.overload.op_deadline_ms * 1e6
            self._shed_expired_ingress = (
                scenario.overload.shed_expired
                and scenario.overload.op_deadline_ms > 0
            )
        self.cluster = self._build_cluster()
        if scenario.tiering is not None:
            self.result.tiering_enabled = True
            self._tier_engine = self.cluster.tier_engine
            self._tier_tick_every = scenario.tiering.tick_every_ops
            self._read_stats = {}
        self._spans = self.cluster.spans
        if self._spans is not None:
            self.result.tracing_enabled = True
            self.result.spans = self._spans
        self._clients = [
            self.cluster.client(name, client_name=f"wl-{name}")
            for name in self.cluster.node_names()
        ]
        if scenario.overload is not None:
            # Preload is setup, not measured traffic: build the population
            # at infinite capacity, then arm the finite service rate with a
            # clean queue so the experiment starts from steady state.
            for name in self.cluster.node_names():
                self.cluster.node(name).server.overload.set_service_rate(0.0)
        if self._spans is not None:
            # Preload puts are setup, not measured ops: park the sink so
            # they neither open spans nor skew the tail-keep distribution.
            self._spans.enabled = False
        self._preload()
        if self._spans is not None:
            self._spans.enabled = True
        if scenario.overload is not None:
            for name in self.cluster.node_names():
                model = self.cluster.node(name).server.overload
                model.reset()
                model.set_service_rate(scenario.overload.service_rate_ops_per_s)
        ops = generate_stream(scenario, self.seed)
        clock = self.cluster.clock
        t0 = clock.now_ns

        # Periodic one-node stalls (traffic-plane OverloadBurst analogue).
        self._burst_model = None
        spec = scenario.overload
        if (
            spec is not None
            and spec.burst_backlog_ms > 0
            and spec.burst_period_s > 0
        ):
            names = self.cluster.node_names()
            target = names[spec.burst_node % len(names)]
            self._burst_model = self.cluster.node(target).server.overload
            self._burst_backlog_ns = spec.burst_backlog_ms * 1e6
            self._burst_period_ns = spec.burst_period_s * 1e9
            self._next_burst_ns = t0 + self._burst_period_ns

        arrival = scenario.traffic.arrival
        if self._rpc_async:
            self._run_async(ops, t0, arrival)
        elif arrival.mode == "open":
            for op in ops:
                at = t0 + op.at_ns
                if clock.now_ns < at:
                    clock.advance(at - clock.now_ns)
                self._execute(op, at)
                self._maybe_tier_tick()
        else:
            # Earliest-ready client pulls the next op from the stream.
            ready = [(t0, client_id) for client_id in range(arrival.clients)]
            heapq.heapify(ready)
            for op in ops:
                ready_ns, client_id = heapq.heappop(ready)
                if clock.now_ns < ready_ns:
                    clock.advance(ready_ns - clock.now_ns)
                self._execute(op, ready_ns)
                self._maybe_tier_tick()
                heapq.heappush(
                    ready,
                    (
                        closed_loop_next(clock.now_ns, arrival.think_time_us),
                        client_id,
                    ),
                )

        self.result.duration_ns = clock.now_ns - t0
        self.result.admission = self.admission.snapshot()
        if self.result.overload_enabled:
            self._collect_overload()
        if self.result.tiering_enabled:
            self.result.tiering = self._collect_tiering()
        if self._spans is not None:
            self.result.sampling = self._spans.sampling_stats()
        if scenario.rpc is not None:
            self.result.rpc_enabled = True
            self.result.rpc_mode = scenario.rpc.mode
            self._collect_rpc()
        return self.result

    def _run_async(self, ops, t0: int, arrival) -> None:
        """Drive the op stream through the event loop.

        Open loop: one task per op, spawned at its scheduled arrival —
        in-flight ops overlap in simulated time instead of serializing.
        Closed loop: ``clients`` puller tasks, each taking the next op from
        the shared stream and sleeping its think time between ops.
        """
        loop = self.cluster.loop
        clock = self.cluster.clock
        if arrival.mode == "open":
            for op in ops:
                at = t0 + op.at_ns
                loop.run_until(at)
                loop.spawn(self._op_task(op, at), name=f"op:{op.seq}")
            loop.drain()
            return
        queue = deque(ops)
        think = arrival.think_time_us

        def puller():
            while queue:
                op = queue.popleft()
                yield from self._op_task(op, clock.now_ns)
                ready = closed_loop_next(clock.now_ns, think)
                if ready > clock.now_ns:
                    yield Sleep(ready - clock.now_ns)

        for client_id in range(arrival.clients):
            loop.spawn(puller(), name=f"client:{client_id}")
        loop.drain()

    def _collect_rpc(self) -> None:
        """Merge per-channel async-plane counters into the result (node
        order → deterministic; ``in_flight_peak`` is a max, the rest sum)."""
        merged = self.result.rpc_counters
        for name in self.cluster.node_names():
            node = self.cluster.node(name)
            for _, channel in sorted(node.channels.items()):
                counters = getattr(channel, "aio_counters", None)
                if not counters:
                    continue
                for key, value in counters.items():
                    if key == "in_flight_peak":
                        merged[key] = max(merged.get(key, 0), value)
                    else:
                        merged[key] = merged.get(key, 0) + value


def run_scenario(
    scenario: Scenario, seed: int | None = None
) -> tuple[WorkloadResult, dict]:
    """Run *scenario* and return ``(result, BENCH payload)``."""
    result = ScenarioRunner(scenario, seed).run()
    return result, build_workload_payload(result)
