"""Multi-tenant admission control: quotas and token buckets on simulated time.

A shared disaggregated store is only shareable if one tenant cannot starve
the rest — the canonical production traffic shape for memory
disaggregation is many tenants with wildly different demand. This module
enforces, at the client entry point and *before* any cluster work happens:

* **stored-byte quotas** — an upper bound on a tenant's live footprint,
  maintained by :meth:`AdmissionController.record_stored` as writes land
  and deletes free;
* **ops/s rate limits** — a :class:`TokenBucket` per tenant refilled by
  simulated time, so a burst above ``burst_ops`` is throttled;
* **write-bandwidth limits** — a second bucket denominated in bytes.

Rejections raise the typed
:class:`~repro.common.errors.AdmissionRejectedError` carrying the tenant
and a machine-readable reason (``ops_rate`` / ``write_rate`` /
``byte_quota``), and are counted per tenant — optionally exported through
a :class:`~repro.obs.metrics.MetricsRegistry` as labeled counter families.

Everything here is pure state driven by explicit ``now_ns`` arguments:
no wall clock, no RNG, so admission decisions are a deterministic function
of the op stream and the scenario's quotas.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.clock import NS_PER_S
from repro.common.errors import AdmissionRejectedError

#: Machine-readable rejection reasons (the `reason` on the typed error).
REJECT_REASONS = ("ops_rate", "write_rate", "byte_quota")


class TokenBucket:
    """A token bucket refilled continuously by simulated time.

    Starts full. ``try_take(n, now_ns)`` refills according to the elapsed
    simulated nanoseconds, then either debits *n* tokens and returns True
    or leaves the bucket untouched and returns False (failed attempts do
    not consume capacity).
    """

    __slots__ = ("rate_per_s", "burst", "_tokens", "_refilled_at_ns")

    def __init__(self, rate_per_s: float, burst: float, *, now_ns: int = 0):
        if rate_per_s <= 0:
            raise ValueError("token rate must be positive")
        if burst <= 0:
            raise ValueError("burst must be positive")
        self.rate_per_s = float(rate_per_s)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._refilled_at_ns = int(now_ns)

    def _refill(self, now_ns: int) -> None:
        if now_ns > self._refilled_at_ns:
            elapsed_s = (now_ns - self._refilled_at_ns) / NS_PER_S
            self._tokens = min(
                self.burst, self._tokens + elapsed_s * self.rate_per_s
            )
            self._refilled_at_ns = now_ns

    def try_take(self, n: float, now_ns: int) -> bool:
        self._refill(now_ns)
        if self._tokens + 1e-9 < n:
            return False
        self._tokens -= n
        return True

    def available(self, now_ns: int) -> float:
        self._refill(now_ns)
        return self._tokens


@dataclass(frozen=True)
class TenantQuota:
    """Admission limits for one tenant; ``None`` disables that limit."""

    max_stored_bytes: int | None = None
    ops_per_s: float | None = None
    burst_ops: int = 32
    write_bytes_per_s: float | None = None
    burst_bytes: int = 1 << 20


class _TenantState:
    __slots__ = ("quota", "ops_bucket", "bytes_bucket", "stored_bytes",
                 "admitted", "rejected", "rejected_by_reason")

    def __init__(self, quota: TenantQuota, now_ns: int):
        self.quota = quota
        self.ops_bucket = (
            TokenBucket(quota.ops_per_s, quota.burst_ops, now_ns=now_ns)
            if quota.ops_per_s is not None
            else None
        )
        self.bytes_bucket = (
            TokenBucket(quota.write_bytes_per_s, quota.burst_bytes,
                        now_ns=now_ns)
            if quota.write_bytes_per_s is not None
            else None
        )
        self.stored_bytes = 0
        self.admitted = 0
        self.rejected = 0
        self.rejected_by_reason: dict[str, int] = {}


class AdmissionController:
    """Per-tenant admission decisions for a workload run.

    Tenants without a registered quota are unlimited (but still counted),
    so single-tenant scenarios pay nothing for the machinery.
    """

    def __init__(self) -> None:
        self._tenants: dict[str, _TenantState] = {}
        self._m_admitted = None
        self._m_rejected = None

    # -- configuration -------------------------------------------------------

    def set_quota(self, tenant: str, quota: TenantQuota,
                  *, now_ns: int = 0) -> None:
        """Install (or replace) *tenant*'s quota.

        Replacing resets the token buckets (they start full at ``now_ns``)
        but preserves the stored-byte account and admission counters —
        bytes already in the store do not evaporate when limits change.
        """
        state = self._tenants.get(tenant)
        fresh = _TenantState(quota, now_ns)
        if state is not None:
            fresh.stored_bytes = state.stored_bytes
            fresh.admitted = state.admitted
            fresh.rejected = state.rejected
            fresh.rejected_by_reason = state.rejected_by_reason
        self._tenants[tenant] = fresh

    def attach_metrics(self, registry) -> None:
        """Export admission counters as labeled families on *registry*."""
        self._m_admitted = registry.counter(
            "workload_admission_admitted_total",
            "Operations admitted per tenant",
            labels=("tenant",),
        )
        self._m_rejected = registry.counter(
            "workload_admission_rejected_total",
            "Operations rejected per tenant and reason",
            labels=("tenant", "reason"),
        )

    # -- decisions -----------------------------------------------------------

    def _state(self, tenant: str) -> _TenantState | None:
        return self._tenants.get(tenant)

    def _reject(self, state: _TenantState, tenant: str, reason: str,
                detail: str) -> None:
        state.rejected += 1
        state.rejected_by_reason[reason] = (
            state.rejected_by_reason.get(reason, 0) + 1
        )
        if self._m_rejected is not None:
            self._m_rejected.labels(tenant=tenant, reason=reason).inc()
        raise AdmissionRejectedError(tenant, reason, detail)

    def admit(self, tenant: str, kind: str, nbytes: int, now_ns: int) -> None:
        """Admit one *kind* op of *nbytes* for *tenant* or raise.

        Checks run cheapest-first and a rejected op consumes no tokens:
        ops-rate, then (for writes) write-bandwidth, then the stored-byte
        quota projected to include this write.
        """
        state = self._state(tenant)
        if state is None:
            state = _TenantState(TenantQuota(), now_ns)
            self._tenants[tenant] = state
        quota = state.quota
        writes = kind == "write"
        if state.ops_bucket is not None and not state.ops_bucket.try_take(
            1.0, now_ns
        ):
            self._reject(
                state, tenant, "ops_rate",
                f"over {quota.ops_per_s:g} ops/s (burst {quota.burst_ops})",
            )
        if writes and state.bytes_bucket is not None:
            if not state.bytes_bucket.try_take(float(nbytes), now_ns):
                self._reject(
                    state, tenant, "write_rate",
                    f"over {quota.write_bytes_per_s:g} B/s "
                    f"(burst {quota.burst_bytes})",
                )
        if (
            writes
            and quota.max_stored_bytes is not None
            and state.stored_bytes + nbytes > quota.max_stored_bytes
        ):
            self._reject(
                state, tenant, "byte_quota",
                f"{state.stored_bytes} stored + {nbytes} new > "
                f"{quota.max_stored_bytes} quota",
            )
        state.admitted += 1
        if self._m_admitted is not None:
            self._m_admitted.labels(tenant=tenant).inc()

    def record_stored(self, tenant: str, delta_bytes: int) -> None:
        """Account a footprint change: positive on put, negative on delete."""
        state = self._state(tenant)
        if state is None:
            state = _TenantState(TenantQuota(), 0)
            self._tenants[tenant] = state
        state.stored_bytes = max(0, state.stored_bytes + int(delta_bytes))

    # -- introspection -------------------------------------------------------

    def stored_bytes(self, tenant: str) -> int:
        state = self._state(tenant)
        return state.stored_bytes if state is not None else 0

    def snapshot(self) -> dict:
        """Deterministic per-tenant admission accounting (sorted by name)."""
        return {
            tenant: {
                "admitted": state.admitted,
                "rejected": state.rejected,
                "rejected_by_reason": dict(
                    sorted(state.rejected_by_reason.items())
                ),
                "stored_bytes": state.stored_bytes,
            }
            for tenant, state in sorted(self._tenants.items())
        }
